// The semantic equivalence oracle: proves a compiled program applies
// exactly the unitary of its source circuit. The only liberty the
// compilers take is reordering gates *within* a commutable CZ block, so
// equivalence decomposes into (a) gate accounting — the compiled stream
// is a concatenation of per-block permutations with the 1Q totals
// preserved — and (b) a numeric state-vector check that the gate
// sequences agree on a random state, which catches any discrepancy the
// structural walk can express but mis-judges.
//
// The numeric check runs on the batched engine: both gate sequences are
// lowered to statevec programs and fused (a CZ-only sequence collapses
// to a handful of single-pass sign sweeps, bit-identical to sequential
// application), and AllBatch simulates whole corpora of deferred cases
// as shared Batch runs. Fusion is what affords MaxOracleQubits = 22:
// the sign pass costs one sweep over the state however many gates the
// circuit has.
package verify

import (
	"math/rand"
	"time"

	"powermove/internal/circuit"
	"powermove/internal/exact"
	"powermove/internal/isa"
	"powermove/internal/statevec"
)

// MaxOracleQubits bounds the register size the state-vector oracle
// simulates. Gate fusion turned the per-check cost from gates x 2^n
// into a near-constant number of passes over 2^n amplitudes, which is
// what affords 2^22 (64 MiB of complex128 per state) where the unfused
// oracle stopped at 2^18. Larger registers fall back to the structural
// check plus exact spot checks.
const MaxOracleQubits = 22

// OracleTolerance is the max-norm amplitude tolerance of the
// state-vector comparison; the gate set is phase-exact, so any genuine
// discrepancy lands far above it.
const OracleTolerance = 1e-9

// maxExactSpotChecks bounds how many small blocks the structural mode
// re-verifies against the branch-and-bound partitioner per circuit.
const maxExactSpotChecks = 4

// OracleStats counts the state-vector oracle work a verification
// performed — the raw material of the /metrics throughput counters.
// All fields are pure functions of the verified inputs except
// ElapsedNS, which is wall-clock and therefore excluded from JSON so
// summaries stay byte-deterministic.
type OracleStats struct {
	// States is the number of state-vector simulations run (two per
	// oracle case: reference and compiled).
	States int64 `json:"states"`
	// Amps is the total amplitude count across those states.
	Amps int64 `json:"amps"`
	// GatesIn is the gate count handed to the oracle before fusion;
	// GatesApplied is the operation count actually executed after it.
	GatesIn      int64 `json:"gates_in"`
	GatesApplied int64 `json:"gates_applied"`
	// SweepPassesSaved counts the state traversals the segment executor
	// folded away on top of fusion: ops minus sweeps, summed over both
	// programs of every case (statevec.Plan.PassesSaved).
	SweepPassesSaved int64 `json:"sweep_passes_saved"`
	// ElapsedNS is the wall-clock oracle time. In-process consumers
	// (the service ledger) read it; serialized artifacts must not.
	ElapsedNS int64 `json:"-"`
}

// Add folds o into s.
func (s *OracleStats) Add(o OracleStats) { s.accumulate(&o) }

// accumulate folds o into s.
func (s *OracleStats) accumulate(o *OracleStats) {
	if o == nil {
		return
	}
	s.States += o.States
	s.Amps += o.Amps
	s.GatesIn += o.GatesIn
	s.GatesApplied += o.GatesApplied
	s.SweepPassesSaved += o.SweepPassesSaved
	s.ElapsedNS += o.ElapsedNS
}

// CheckEquivalence verifies that prog is semantically equivalent to
// circ. Registers up to MaxOracleQubits get the exact state-vector
// oracle on top of the structural walk; larger ones get the structural
// walk plus internal/exact spot checks of their small blocks.
func CheckEquivalence(circ *circuit.Circuit, prog *isa.Program) *Report {
	r := &Report{}
	if c := checkEquivalenceStructural(r, circ, prog); c != nil {
		start := time.Now()
		ref, got := c.run()
		compareOracle(r, ref, got)
		r.Oracle = c.stats()
		r.Oracle.ElapsedNS = time.Since(start).Nanoseconds()
	}
	return r
}

// checkEquivalenceStructural runs every non-numeric equivalence check
// and returns the deferred state-vector case when the register is small
// enough for the oracle tier, nil otherwise (structural tier, nil
// inputs, or gate streams the simulator cannot apply — the latter are
// already reported structurally).
func checkEquivalenceStructural(r *Report, circ *circuit.Circuit, prog *isa.Program) *oracleCase {
	if circ == nil || prog == nil {
		r.add(GateLoss, -1, nil, "nil circuit or program")
		return nil
	}
	if circ.Qubits != prog.Qubits {
		r.add(GateLoss, -1, nil, "circuit has %d qubits, program has %d", circ.Qubits, prog.Qubits)
		return nil
	}
	structuralCheck(r, circ, prog)
	if circ.Qubits > MaxOracleQubits {
		r.EquivalenceMode = "structural"
		exactSpotCheck(r, circ, prog)
		return nil
	}
	r.EquivalenceMode = "statevec"
	return newOracleCase(circ, prog)
}

// oracleCase is one deferred state-vector comparison: the fused source
// and compiled gate programs (each compiled once by the segment planner)
// plus the seed of the shared random start state. Cases are what
// AllBatch groups into shared Batch runs.
type oracleCase struct {
	n                int
	seed             int64
	src, cmp         []statevec.Op
	srcPlan, cmpPlan *statevec.Plan
	gatesIn          int64
}

// newOracleCase lowers both gate streams to fused statevec programs.
// It returns nil when either stream contains a gate the simulator
// cannot apply (out-of-range or self-paired qubits) — those are the
// structural checker's findings; the oracle has nothing to add.
func newOracleCase(circ *circuit.Circuit, prog *isa.Program) *oracleCase {
	lower := func(gates []circuit.CZ) ([]statevec.Op, bool) {
		ops := make([]statevec.Op, 0, len(gates))
		for _, g := range gates {
			if g.A < 0 || g.B < 0 || g.A >= circ.Qubits || g.B >= circ.Qubits || g.A == g.B {
				return nil, false
			}
			ops = append(ops, statevec.GateCZ(g.A, g.B))
		}
		return ops, true
	}
	var source []circuit.CZ
	for bi := range circ.Blocks {
		source = append(source, circ.Blocks[bi].Gates...)
	}
	compiled := compiledCZOrder(prog)
	src, ok := lower(source)
	if !ok {
		return nil
	}
	cmp, ok := lower(compiled)
	if !ok {
		return nil
	}
	c := &oracleCase{
		n:       circ.Qubits,
		seed:    oracleSeed(circ),
		src:     statevec.Fuse(src),
		cmp:     statevec.Fuse(cmp),
		gatesIn: int64(len(src) + len(cmp)),
	}
	c.srcPlan = statevec.NewPlan(c.n, c.src)
	c.cmpPlan = statevec.NewPlan(c.n, c.cmp)
	return c
}

// run simulates the case standalone: reference and compiled states from
// the same seeded random start, each applying its fused program. The
// amplitudes — and hence the verdict — are bit-identical to the batched
// path (AllBatch) and to the historical unfused gate-by-gate oracle,
// because CZ fusion only reorders exact sign flips.
func (c *oracleCase) run() (ref, got *statevec.State) {
	rng := rand.New(rand.NewSource(c.seed))
	ref = statevec.NewRandom(c.n, rng)
	got = ref.Clone()
	ref.RunPlan(c.srcPlan)
	got.RunPlan(c.cmpPlan)
	return ref, got
}

// stats returns the oracle accounting of the case (ElapsedNS unset —
// the runner owns the clock).
func (c *oracleCase) stats() *OracleStats {
	return &OracleStats{
		States:           2,
		Amps:             2 << uint(c.n),
		GatesIn:          c.gatesIn,
		GatesApplied:     int64(len(c.src) + len(c.cmp)),
		SweepPassesSaved: int64(c.srcPlan.PassesSaved() + c.cmpPlan.PassesSaved()),
	}
}

// compareOracle renders the state-vector verdict into r: the compiled
// state must coincide with the reference amplitude for amplitude.
func compareOracle(r *Report, ref, got *statevec.State) {
	if !got.Equal(ref, OracleTolerance) {
		r.add(StateMismatch, -1, nil,
			"state-vector oracle: compiled program diverges from the source circuit (fidelity %.12f)",
			ref.Fidelity(got))
	}
}

// compiledCZOrder extracts the CZ gates prog executes, in pulse order.
func compiledCZOrder(prog *isa.Program) []circuit.CZ {
	var out []circuit.CZ
	for _, in := range prog.Instr {
		if p, ok := in.(isa.Rydberg); ok {
			out = append(out, p.Pairs...)
		}
	}
	return out
}

// structuralCheck walks the compiled CZ stream against the circuit's
// dependent blocks: each block's gates must appear as a contiguous
// multiset permutation, in block order, and the 1Q layer totals must
// match. It reports cross-block reorderings (BlockOrder) and any
// multiset discrepancy (GateLoss, OneQLoss).
func structuralCheck(r *Report, circ *circuit.Circuit, prog *isa.Program) {
	compiled := compiledCZOrder(prog)
	idx := 0
	for bi := range circ.Blocks {
		b := &circ.Blocks[bi]
		want := make(map[circuit.CZ]int, len(b.Gates))
		for _, g := range b.Gates {
			want[g]++
		}
		for count := len(b.Gates); count > 0; count-- {
			if idx >= len(compiled) {
				r.add(GateLoss, -1, nil, "compiled stream ended inside block %d (%d gate(s) missing)", bi, count)
				return
			}
			g := compiled[idx]
			if want[g] == 0 {
				r.add(BlockOrder, -1, []int{g.A, g.B}, "gate %v executed during block %d, which does not contain it", g, bi)
				return
			}
			want[g]--
			idx++
		}
	}
	if idx != len(compiled) {
		r.add(GateLoss, -1, nil, "compiled stream has %d extra gate(s) after the last block", len(compiled)-idx)
	}

	oneQ := 0
	for _, in := range prog.Instr {
		if l, ok := in.(isa.OneQLayer); ok {
			oneQ += l.Count
		}
	}
	if oneQ != circ.OneQCount() {
		r.add(OneQLoss, -1, nil, "compiled stream applies %d single-qubit gates, circuit has %d", oneQ, circ.OneQCount())
	}
}

// oracleSeed derives a deterministic RNG seed from the circuit identity
// (FNV over the name, mixed with the qubit count), so verification is a
// pure function of its inputs — the property the outcome cache and
// byte-stable documents rely on.
func oracleSeed(circ *circuit.Circuit) int64 {
	h := int64(1469598103934665603)
	for _, b := range []byte(circ.Name) {
		h ^= int64(b)
		h *= 1099511628211
	}
	return h ^ int64(circ.Qubits)*2654435761
}

// exactSpotCheck re-derives, for up to maxExactSpotChecks small blocks,
// the provably minimal stage count via internal/exact and asserts the
// compiled pulse schedule respects it: a block lowered in fewer pulses
// than the optimum has merged overlapping gates into one pulse (its
// pulses cannot all be disjoint), and more pulses than gates means a
// pulse fired without work.
func exactSpotCheck(r *Report, circ *circuit.Circuit, prog *isa.Program) {
	// Reconstruct per-block pulse counts by walking pulses against the
	// block gate totals (the structural check has already pinned the
	// stream to block order; bail out if it could not).
	if !r.OK() {
		return
	}
	pulses := make([]int, len(circ.Blocks))
	bi := 0
	remaining := 0
	if len(circ.Blocks) > 0 {
		remaining = len(circ.Blocks[0].Gates)
	}
	for _, in := range prog.Instr {
		p, ok := in.(isa.Rydberg)
		if !ok {
			continue
		}
		for bi < len(circ.Blocks) && remaining == 0 {
			bi++
			if bi < len(circ.Blocks) {
				remaining = len(circ.Blocks[bi].Gates)
			}
		}
		if bi >= len(circ.Blocks) {
			return // extra pulses already reported as GateLoss
		}
		pulses[bi]++
		remaining -= len(p.Pairs)
		if remaining < 0 {
			// The pulse straddles a block boundary: per-block pulse
			// counts cannot be attributed cleanly, so skip the spot
			// check (the physical checker judges the pulse on its own
			// terms) rather than risk false StageCount findings.
			return
		}
	}
	checked := 0
	for bi, b := range circ.Blocks {
		if checked >= maxExactSpotChecks {
			return
		}
		if len(b.Gates) == 0 || len(b.Gates) > exact.MaxGates {
			continue
		}
		checked++
		min, err := exact.MinStages(b.Gates)
		if err != nil {
			continue
		}
		if pulses[bi] < min || pulses[bi] > len(b.Gates) {
			r.add(StageCount, -1, nil,
				"block %d lowered in %d pulse(s); optimal partition needs %d and %d gates bound it above",
				bi, pulses[bi], min, len(b.Gates))
		}
	}
}
