//go:build !race

package verify

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = false
