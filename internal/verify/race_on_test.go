//go:build race

package verify

// raceEnabled reports whether the race detector instruments this build;
// the fuzz harness caps its deep-oracle register sizes under it (race
// shadow memory makes multi-MB state vectors ~10x slower).
const raceEnabled = true
