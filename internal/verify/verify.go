// Package verify is the compiler's differential verification subsystem:
// it proves — independently of both the compiler and the executor — that
// a compiled program is *legal* for its target hardware and *means* the
// circuit it was compiled from.
//
// Two checkers cover the two halves of that claim:
//
//   - CheckPhysical replays the instruction stream against the arch
//     model and reports every physical-constraint violation as a
//     structured Violation: AOD row/column order inversions within a
//     collective move (Sec. 5.3 / Fig. 5), more simultaneous groups
//     than AOD arrays, trap double-occupancy and stray pairs at Rydberg
//     pulses (Sec. 5.1), interaction-zone spacing breaches (Rydberg
//     blockade, Table 1), and stage-transition inconsistencies (a move
//     departing from a site its qubit does not occupy).
//   - CheckEquivalence proves semantic equivalence with the source
//     circuit: a structural gate-accounting pass for any size, and for
//     registers up to MaxOracleQubits a state-vector oracle that runs
//     both gate sequences on a seeded random state and demands
//     fidelity 1. Larger registers get internal/exact spot checks on
//     their small blocks instead.
//
// Unlike internal/sim — which fail-stops on the first illegal
// instruction — the verifier is best-effort and exhaustive: it keeps
// replaying past violations and returns them all, which is what makes
// its reports useful as fuzzing oracles (FuzzCompileVerify) and as
// production diagnostics behind the daemon's verify mode.
package verify

import (
	"fmt"
	"strings"

	"powermove/internal/arch"
	"powermove/internal/circuit"
	"powermove/internal/geom"
	"powermove/internal/isa"
	"powermove/internal/layout"
	"powermove/internal/move"
	"powermove/internal/phys"
)

// Code classifies one violation kind. Codes are stable strings so
// reports aggregate cleanly across runs and into /metrics counters.
type Code string

// The physical-constraint violation codes.
const (
	// AODConflict: two moves of one collective move invert or merge
	// their row/column order between start and end (Fig. 5).
	AODConflict Code = "aod-conflict"
	// AODOverflow: a move batch carries more groups than the
	// architecture has AOD arrays.
	AODOverflow Code = "aod-overflow"
	// DoubleMove: a qubit is relocated twice within one batch.
	DoubleMove Code = "double-move"
	// StaleSource: a move departs from a site its qubit does not occupy
	// at that point of the replay — a stage-transition inconsistency
	// between the router's layout bookkeeping and the emitted stream.
	StaleSource Code = "stale-source"
	// EndpointMismatch: a move's cached physical coordinates disagree
	// with its site endpoints, corrupting the conflict predicate.
	EndpointMismatch Code = "endpoint-mismatch"
	// OutOfBounds: a move references a qubit or site outside the
	// architecture.
	OutOfBounds Code = "out-of-bounds"
	// TrapOverflow: a site holds more than two qubits at a Rydberg
	// pulse.
	TrapOverflow Code = "trap-overflow"
	// StrayPair: a doubly-occupied site at a Rydberg pulse does not
	// hold exactly one scheduled CZ pair.
	StrayPair Code = "stray-pair"
	// StorageInteraction: a scheduled pair sits in the storage zone at
	// its pulse, where the Rydberg laser cannot reach it.
	StorageInteraction Code = "storage-interaction"
	// SplitPair: a scheduled pair is not co-located at its pulse.
	SplitPair Code = "split-pair"
	// SpacingBreach: a non-interacting qubit sits within
	// phys.MinSeparation of an interacting qubit during a pulse.
	SpacingBreach Code = "spacing-breach"
	// QubitReuse: a qubit appears in two gates of one pulse.
	QubitReuse Code = "qubit-reuse"
	// EmptyInstr: a move batch with no groups or a pulse with no gates.
	EmptyInstr Code = "empty-instr"
)

// The semantic-equivalence violation codes (see oracle.go).
const (
	// GateLoss: the compiled stream's CZ multiset differs from the
	// circuit's (a gate dropped, duplicated, or invented).
	GateLoss Code = "gate-loss"
	// BlockOrder: a gate executed outside its dependent block's span —
	// commutation was assumed across a block boundary.
	BlockOrder Code = "block-order"
	// OneQLoss: the compiled single-qubit gate count differs from the
	// circuit's.
	OneQLoss Code = "oneq-loss"
	// StateMismatch: the state-vector oracle measured fidelity below
	// 1 between the compiled and source gate sequences.
	StateMismatch Code = "state-mismatch"
	// StageCount: a block's pulse count is below the provably minimal
	// stage count (internal/exact) — impossible for a real partition,
	// so gates were merged or dropped.
	StageCount Code = "stage-count"
)

// Violation is one structured diagnostic.
type Violation struct {
	// Code classifies the violation.
	Code Code `json:"code"`
	// Instr is the offending instruction index, or -1 for program-level
	// findings.
	Instr int `json:"instr"`
	// Qubits lists the qubits involved, when meaningful.
	Qubits []int `json:"qubits,omitempty"`
	// Detail is the human-readable specifics.
	Detail string `json:"detail"`
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	if v.Instr < 0 {
		return fmt.Sprintf("%s: %s", v.Code, v.Detail)
	}
	return fmt.Sprintf("%s @%d: %s", v.Code, v.Instr, v.Detail)
}

// Report collects every violation one verification found, with the
// replay accounting that scopes it.
type Report struct {
	// Violations are the findings, in replay order.
	Violations []Violation `json:"violations,omitempty"`
	// Instructions, Batches, and Pulses count the replayed stream.
	Instructions int `json:"instructions"`
	Batches      int `json:"batches"`
	Pulses       int `json:"pulses"`
	// EquivalenceMode records how semantic equivalence was established:
	// "statevec" (exact oracle), "structural" (gate accounting + exact
	// spot checks), or "" when only the physical checker ran.
	EquivalenceMode string `json:"equivalence_mode,omitempty"`
	// Oracle accounts the state-vector oracle work, when it ran.
	Oracle *OracleStats `json:"oracle,omitempty"`
}

// OK reports whether the verification found no violations.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

func (r *Report) add(code Code, instr int, qubits []int, format string, args ...any) {
	r.Violations = append(r.Violations, Violation{
		Code:   code,
		Instr:  instr,
		Qubits: qubits,
		Detail: fmt.Sprintf(format, args...),
	})
}

// merge appends o's violations to r, keeping r's replay accounting.
func (r *Report) merge(o *Report) {
	r.Violations = append(r.Violations, o.Violations...)
	if o.EquivalenceMode != "" {
		r.EquivalenceMode = o.EquivalenceMode
	}
	if o.Oracle != nil {
		if r.Oracle == nil {
			r.Oracle = &OracleStats{}
		}
		r.Oracle.accumulate(o.Oracle)
	}
}

// String renders the report as one line per violation, or an all-clear.
func (r *Report) String() string {
	if r.OK() {
		return fmt.Sprintf("verify: OK (%d instructions, %d batches, %d pulses)",
			r.Instructions, r.Batches, r.Pulses)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "verify: %d violation(s) in %d instructions\n", len(r.Violations), r.Instructions)
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "  %s\n", v)
	}
	return strings.TrimRight(b.String(), "\n")
}

// MaxSummaryMessages bounds the violation messages a Summary carries;
// the full list stays on the Report.
const MaxSummaryMessages = 8

// Summary is the serializable digest of a Report that rides on service
// responses and batch outcomes: deterministic counts plus the first few
// rendered violations.
type Summary struct {
	// Violations is the total finding count (0 = verified clean).
	Violations int `json:"violations"`
	// Codes counts findings per violation code.
	Codes map[string]int `json:"codes,omitempty"`
	// EquivalenceMode echoes Report.EquivalenceMode.
	EquivalenceMode string `json:"equivalence_mode,omitempty"`
	// Messages holds up to MaxSummaryMessages rendered violations.
	Messages []string `json:"messages,omitempty"`
	// Oracle echoes Report.Oracle (deep copy; nil when the oracle did
	// not run). Every serialized field is a pure function of the
	// verified inputs, so summaries stay deterministic and cacheable.
	Oracle *OracleStats `json:"oracle,omitempty"`
}

// Summary digests the report.
func (r *Report) Summary() *Summary {
	s := &Summary{
		Violations:      len(r.Violations),
		EquivalenceMode: r.EquivalenceMode,
	}
	if r.Oracle != nil {
		o := *r.Oracle
		s.Oracle = &o
	}
	if len(r.Violations) > 0 {
		s.Codes = make(map[string]int, 4)
		for _, v := range r.Violations {
			s.Codes[string(v.Code)]++
			if len(s.Messages) < MaxSummaryMessages {
				s.Messages = append(s.Messages, v.String())
			}
		}
	}
	return s
}

// All runs the full verification — the physical legality checker and the
// semantic equivalence oracle — and returns the merged report. circ is
// the source circuit res was compiled from.
func All(circ *circuit.Circuit, prog *isa.Program, initial *layout.Layout) *Report {
	r := CheckPhysical(prog, initial)
	r.merge(CheckEquivalence(circ, prog))
	return r
}

// CheckPhysical replays prog from initial against the architecture model
// and reports every physical-constraint violation. The replay is
// best-effort: a violating move is still applied when its target is
// representable, so one early inconsistency does not cascade into a
// avalanche of derived findings.
func CheckPhysical(prog *isa.Program, initial *layout.Layout) *Report {
	r := &Report{}
	if prog == nil || initial == nil {
		r.add(EmptyInstr, -1, nil, "nil program or initial layout")
		return r
	}
	if prog.Qubits != initial.Qubits() {
		r.add(OutOfBounds, -1, nil, "program has %d qubits, layout tracks %d", prog.Qubits, initial.Qubits())
		return r
	}
	for q := 0; q < initial.Qubits(); q++ {
		if !initial.Placed(q) {
			r.add(OutOfBounds, -1, []int{q}, "qubit %d unplaced in the initial layout", q)
			return r
		}
	}
	l := initial.Clone()
	a := l.Arch()
	moved := make([]int, l.Qubits()) // qubit -> last batch index that moved it, -1 sentinel
	for i := range moved {
		moved[i] = -1
	}

	for idx, in := range prog.Instr {
		r.Instructions++
		switch in := in.(type) {
		case isa.OneQLayer:
			if in.Count < 0 {
				r.add(EmptyInstr, idx, nil, "negative 1Q gate count %d", in.Count)
			}
		case isa.MoveBatch:
			r.Batches++
			checkBatch(r, idx, in, l, a, moved)
		case isa.Rydberg:
			r.Pulses++
			checkPulse(r, idx, in, l, a)
		default:
			r.add(EmptyInstr, idx, nil, "unknown instruction type %T", in)
		}
	}
	return r
}

// checkBatch verifies one collective-move batch — AOD capacity, per-group
// order preservation, per-batch exclusivity, and source/endpoint
// consistency — then applies the legal subset of moves to the replay
// layout.
func checkBatch(r *Report, idx int, in isa.MoveBatch, l *layout.Layout, a *arch.Arch, moved []int) {
	if len(in.Groups) == 0 {
		r.add(EmptyInstr, idx, nil, "move batch with no groups")
		return
	}
	if len(in.Groups) > a.AODs {
		r.add(AODOverflow, idx, nil, "batch uses %d groups, architecture has %d AOD array(s)", len(in.Groups), a.AODs)
	}
	for aod, g := range in.Groups {
		// The order-preservation predicate of Sec. 5.3, re-derived
		// pairwise from the emitted endpoint coordinates rather than
		// trusting the grouping pass.
		for i := range g.Moves {
			for j := i + 1; j < len(g.Moves); j++ {
				if move.Conflicts(g.Moves[i], g.Moves[j]) {
					r.add(AODConflict, idx, []int{g.Moves[i].Qubit, g.Moves[j].Qubit},
						"AOD %d: moves %v and %v invert row/column order", aod, g.Moves[i], g.Moves[j])
				}
			}
		}
		for _, m := range g.Moves {
			if m.Qubit < 0 || m.Qubit >= l.Qubits() {
				r.add(OutOfBounds, idx, []int{m.Qubit}, "AOD %d: move references qubit %d of %d", aod, m.Qubit, l.Qubits())
				continue
			}
			if !a.InBounds(m.FromSite) || !a.InBounds(m.ToSite) {
				r.add(OutOfBounds, idx, []int{m.Qubit}, "AOD %d: move %v has out-of-bounds endpoint", aod, m)
				continue
			}
			if a.Pos(m.FromSite) != m.From || a.Pos(m.ToSite) != m.To {
				r.add(EndpointMismatch, idx, []int{m.Qubit},
					"AOD %d: move %v carries coordinates %v->%v, sites resolve to %v->%v",
					aod, m, m.From, m.To, a.Pos(m.FromSite), a.Pos(m.ToSite))
			}
			if moved[m.Qubit] == idx {
				r.add(DoubleMove, idx, []int{m.Qubit}, "AOD %d: qubit %d moved twice in one batch", aod, m.Qubit)
			}
			moved[m.Qubit] = idx
			if got := l.SiteOf(m.Qubit); got != m.FromSite {
				r.add(StaleSource, idx, []int{m.Qubit},
					"AOD %d: qubit %d is at %v, move departs from %v", aod, m.Qubit, got, m.FromSite)
			}
			// Best-effort application: land the qubit where the move
			// says it goes, so later instructions are judged against
			// the stream's own intent.
			l.Move(m.Qubit, m.ToSite)
		}
	}
}

// checkPulse verifies the occupancy and spacing invariants of one global
// Rydberg pulse (Sec. 5.1 and the blockade geometry of Table 1).
func checkPulse(r *Report, idx int, in isa.Rydberg, l *layout.Layout, a *arch.Arch) {
	if len(in.Pairs) == 0 {
		r.add(EmptyInstr, idx, nil, "Rydberg pulse with no gates")
		return
	}
	interacting := make([]bool, l.Qubits())
	paired := make(map[int]int, 2*len(in.Pairs))
	for _, g := range in.Pairs {
		if g.A < 0 || g.B < 0 || g.A >= l.Qubits() || g.B >= l.Qubits() {
			r.add(OutOfBounds, idx, []int{g.A, g.B}, "pulse schedules %v outside the %d-qubit register", g, l.Qubits())
			continue
		}
		if interacting[g.A] || interacting[g.B] {
			r.add(QubitReuse, idx, []int{g.A, g.B}, "stage %d schedules a qubit of %v twice", in.Stage, g)
		}
		interacting[g.A], interacting[g.B] = true, true
		paired[g.A], paired[g.B] = g.B, g.A
		sa, sb := l.SiteOf(g.A), l.SiteOf(g.B)
		if sa != sb {
			r.add(SplitPair, idx, []int{g.A, g.B}, "pair %v split across %v and %v", g, sa, sb)
			continue
		}
		if sa.Zone != arch.Compute {
			r.add(StorageInteraction, idx, []int{g.A, g.B}, "pair %v scheduled at storage site %v", g, sa)
		}
	}

	// Site occupancy: at most two qubits anywhere, and exactly one
	// scheduled pair wherever there are two.
	for _, z := range []arch.Zone{arch.Compute, arch.Storage} {
		for _, s := range a.Sites(z) {
			qs := l.At(s)
			switch {
			case len(qs) > 2:
				r.add(TrapOverflow, idx, append([]int(nil), qs...), "site %v holds %d qubits %v", s, len(qs), qs)
			case len(qs) == 2:
				if p, ok := paired[qs[0]]; !ok || p != qs[1] {
					r.add(StrayPair, idx, append([]int(nil), qs...), "site %v holds non-interacting qubits %v", s, qs)
				}
			}
		}
	}

	// Blockade spacing: every non-interacting qubit must keep
	// phys.MinSeparation from every interacting one, or the pulse
	// entangles it by accident. Interacting partners are exempt from
	// each other (they are co-located by design).
	var iq []int
	var ipos []geom.Point
	for q := 0; q < l.Qubits(); q++ {
		if interacting[q] {
			iq = append(iq, q)
			ipos = append(ipos, l.PosOf(q))
		}
	}
	for q := 0; q < l.Qubits(); q++ {
		if interacting[q] || l.Zone(q) != arch.Compute {
			continue
		}
		p := l.PosOf(q)
		for i, other := range iq {
			if p.Dist(ipos[i]) < phys.MinSeparation {
				r.add(SpacingBreach, idx, []int{q, other},
					"idle qubit %d sits %.1f um from interacting qubit %d (min %.1f)",
					q, p.Dist(ipos[i]), other, phys.MinSeparation)
			}
		}
	}
}
