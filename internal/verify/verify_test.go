package verify

import (
	"strings"
	"testing"

	"powermove/internal/arch"
	"powermove/internal/circuit"
	"powermove/internal/compiler"
	"powermove/internal/isa"
	"powermove/internal/layout"
	"powermove/internal/move"
	"powermove/internal/workload"
)

// hasCode reports whether the report carries at least one violation of
// the given code.
func hasCode(r *Report, code Code) bool {
	for _, v := range r.Violations {
		if v.Code == code {
			return true
		}
	}
	return false
}

func codes(r *Report) string {
	var out []string
	for _, v := range r.Violations {
		out = append(out, string(v.Code))
	}
	return strings.Join(out, ",")
}

// compile lowers circ with the named scheme on its default architecture.
func compile(t *testing.T, circ *circuit.Circuit, scheme string, aods int) *compiler.Result {
	t.Helper()
	var (
		p   *compiler.Pipeline
		err error
	)
	switch scheme {
	case "enola":
		p, err = compiler.Enola(compiler.EnolaConfig{Seed: 1})
	case "non-storage":
		p, err = compiler.Zoned(compiler.ZonedConfig{UseStorage: false})
	case "with-storage":
		p, err = compiler.Zoned(compiler.ZonedConfig{UseStorage: true})
	default:
		t.Fatalf("unknown scheme %q", scheme)
	}
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(circ, arch.New(arch.Config{Qubits: circ.Qubits, AODs: aods}))
	if err != nil {
		t.Fatalf("%s: %v", scheme, err)
	}
	return res
}

// TestAllCleanOnEveryFamilyAndPipeline is the subsystem's base theorem:
// every workload family, compiled by every pipeline, verifies clean
// under both the physical checker and the state-vector oracle.
func TestAllCleanOnEveryFamilyAndPipeline(t *testing.T) {
	circs := []*circuit.Circuit{
		workload.QAOARegular(12, 3, 7),
		workload.QAOARegular(12, 4, 7),
		workload.QAOARandom(10, 7),
		workload.QFT(9),
		workload.BV(10, 7),
		workload.VQE(11),
		workload.QSim(10, 7),
	}
	for _, c := range circs {
		for _, scheme := range []string{"enola", "non-storage", "with-storage"} {
			res := compile(t, c, scheme, 1)
			r := All(c, res.Program, res.Initial)
			if !r.OK() {
				t.Errorf("%s/%s: %s", c.Name, scheme, r)
			}
			if r.EquivalenceMode != "statevec" {
				t.Errorf("%s/%s: equivalence mode %q, want statevec", c.Name, scheme, r.EquivalenceMode)
			}
			if r.Pulses == 0 || r.Instructions == 0 {
				t.Errorf("%s/%s: replay saw %d instructions / %d pulses", c.Name, scheme, r.Instructions, r.Pulses)
			}
		}
	}
}

// TestAllCleanMultiAOD covers the AOD-batched multi-array schedules.
func TestAllCleanMultiAOD(t *testing.T) {
	c := workload.QAOARegular(12, 3, 3)
	for _, aods := range []int{2, 4} {
		res := compile(t, c, "with-storage", aods)
		if r := All(c, res.Program, res.Initial); !r.OK() {
			t.Errorf("%d AODs: %s", aods, r)
		}
	}
}

// TestAllCleanOnRandomCircuits drives the generator layer through both
// pipelines — the deterministic core of what FuzzCompileVerify explores.
func TestAllCleanOnRandomCircuits(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		cfg := workload.RandomConfig{Qubits: 2 + int(seed), Blocks: 1 + int(seed)%5, Density: 0.1 + 0.08*float64(seed)}
		c := workload.Random(cfg, seed)
		hw := workload.RandomArch(c.Qubits, seed)
		for _, scheme := range []string{"enola", "non-storage", "with-storage"} {
			var p *compiler.Pipeline
			var err error
			if scheme == "enola" {
				if hw.AODs != 1 {
					continue // the baseline is single-AOD
				}
				p, err = compiler.Enola(compiler.EnolaConfig{Seed: 1})
			} else {
				p, err = compiler.Zoned(compiler.ZonedConfig{UseStorage: scheme == "with-storage"})
			}
			if err != nil {
				t.Fatal(err)
			}
			res, err := p.Run(c, hw)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, scheme, err)
			}
			if r := All(c, res.Program, res.Initial); !r.OK() {
				t.Errorf("seed %d %s: %s", seed, scheme, r)
			}
		}
	}
}

// fourQubitBoard builds a 4-qubit arch and a layout with every qubit on
// its own storage site, for hand-crafted illegal programs.
func fourQubitBoard() (*arch.Arch, *layout.Layout) {
	a := arch.New(arch.Config{Qubits: 4})
	l := layout.New(a, 4)
	l.PlaceAll(arch.Storage)
	return a, l
}

func site(z arch.Zone, row, col int) arch.Site { return arch.Site{Zone: z, Row: row, Col: col} }

func prog(n int, instr ...isa.Instruction) *isa.Program {
	return &isa.Program{Name: "crafted", Qubits: n, Instr: instr}
}

func TestCheckPhysicalDetectsAODConflict(t *testing.T) {
	a, l := fourQubitBoard()
	// q0 and q1 swap column order between start and end: a Fig. 5
	// inversion inside one collective move.
	batch := isa.MoveBatch{Groups: []move.CollMove{{Moves: []move.Move{
		move.New(a, 0, site(arch.Storage, 0, 0), site(arch.Storage, 1, 1)),
		move.New(a, 1, site(arch.Storage, 0, 1), site(arch.Storage, 1, 0)),
	}}}}
	r := CheckPhysical(prog(4, batch), l)
	if !hasCode(r, AODConflict) {
		t.Fatalf("order inversion not detected: %s", codes(r))
	}
}

func TestCheckPhysicalDetectsAODOverflow(t *testing.T) {
	a, l := fourQubitBoard()
	batch := isa.MoveBatch{Groups: []move.CollMove{
		{Moves: []move.Move{move.New(a, 0, site(arch.Storage, 0, 0), site(arch.Storage, 2, 0))}},
		{Moves: []move.Move{move.New(a, 1, site(arch.Storage, 0, 1), site(arch.Storage, 2, 1))}},
	}}
	r := CheckPhysical(prog(4, batch), l)
	if !hasCode(r, AODOverflow) {
		t.Fatalf("2 groups on a 1-AOD machine not detected: %s", codes(r))
	}
}

func TestCheckPhysicalDetectsDoubleMove(t *testing.T) {
	a, l := fourQubitBoard()
	batch := isa.MoveBatch{Groups: []move.CollMove{{Moves: []move.Move{
		move.New(a, 0, site(arch.Storage, 0, 0), site(arch.Storage, 2, 0)),
		move.New(a, 0, site(arch.Storage, 2, 0), site(arch.Storage, 3, 0)),
	}}}}
	r := CheckPhysical(prog(4, batch), l)
	if !hasCode(r, DoubleMove) {
		t.Fatalf("double move not detected: %s", codes(r))
	}
}

func TestCheckPhysicalDetectsStaleSource(t *testing.T) {
	a, l := fourQubitBoard()
	// q0 lives at storage[0,0]; the move claims it departs from [3,1].
	batch := isa.MoveBatch{Groups: []move.CollMove{{Moves: []move.Move{
		move.New(a, 0, site(arch.Storage, 3, 1), site(arch.Storage, 2, 1)),
	}}}}
	r := CheckPhysical(prog(4, batch), l)
	if !hasCode(r, StaleSource) {
		t.Fatalf("stage-transition inconsistency not detected: %s", codes(r))
	}
}

func TestCheckPhysicalDetectsEndpointMismatch(t *testing.T) {
	a, l := fourQubitBoard()
	m := move.New(a, 0, site(arch.Storage, 0, 0), site(arch.Storage, 2, 0))
	m.From.X += 3 // corrupt the cached physical coordinate
	batch := isa.MoveBatch{Groups: []move.CollMove{{Moves: []move.Move{m}}}}
	r := CheckPhysical(prog(4, batch), l)
	if !hasCode(r, EndpointMismatch) {
		t.Fatalf("endpoint mismatch not detected: %s", codes(r))
	}
}

func TestCheckPhysicalDetectsOutOfBounds(t *testing.T) {
	a, l := fourQubitBoard()
	m := move.New(a, 0, site(arch.Storage, 0, 0), site(arch.Storage, 2, 0))
	m.Qubit = 99
	batch := isa.MoveBatch{Groups: []move.CollMove{{Moves: []move.Move{m}}}}
	r := CheckPhysical(prog(4, batch), l)
	if !hasCode(r, OutOfBounds) {
		t.Fatalf("out-of-range qubit not detected: %s", codes(r))
	}
	bad := move.Move{Qubit: 0, FromSite: site(arch.Storage, 0, 0), ToSite: site(arch.Storage, 99, 0)}
	r = CheckPhysical(prog(4, isa.MoveBatch{Groups: []move.CollMove{{Moves: []move.Move{bad}}}}), l)
	if !hasCode(r, OutOfBounds) {
		t.Fatalf("out-of-bounds site not detected: %s", codes(r))
	}
}

// moveTo relocates one qubit legally (matching the replay layout).
func moveTo(a *arch.Arch, l *layout.Layout, q int, to arch.Site) isa.MoveBatch {
	return isa.MoveBatch{Groups: []move.CollMove{{Moves: []move.Move{
		move.New(a, q, l.SiteOf(q), to),
	}}}}
}

func TestCheckPhysicalDetectsTrapOverflowAndSpacing(t *testing.T) {
	a, l := fourQubitBoard()
	target := site(arch.Compute, 0, 0)
	// Pile q0, q1, q2 onto one compute site, then pulse (0, 1): three
	// qubits in one trap, with the idle q2 zero micrometres from an
	// interacting pair.
	b0 := moveTo(a, l.Clone(), 0, target)
	work := l.Clone()
	work.Move(0, target)
	b1 := moveTo(a, work, 1, target)
	work.Move(1, target)
	b2 := moveTo(a, work, 2, target)
	pulse := isa.Rydberg{Stage: 0, Pairs: []circuit.CZ{circuit.NewCZ(0, 1)}}
	r := CheckPhysical(prog(4, b0, b1, b2, pulse), l)
	if !hasCode(r, TrapOverflow) {
		t.Fatalf("trap overflow not detected: %s", codes(r))
	}
	if !hasCode(r, SpacingBreach) {
		t.Fatalf("blockade spacing breach not detected: %s", codes(r))
	}
}

func TestCheckPhysicalDetectsStrayPair(t *testing.T) {
	a, l := fourQubitBoard()
	target := site(arch.Compute, 1, 1)
	b0 := moveTo(a, l.Clone(), 0, target)
	work := l.Clone()
	work.Move(0, target)
	b1 := moveTo(a, work, 1, target)
	work.Move(1, target)
	// Pair (2, 3) is scheduled, but the co-located pair is (0, 1).
	other := site(arch.Compute, 0, 0)
	b2 := moveTo(a, work, 2, other)
	work.Move(2, other)
	b3 := moveTo(a, work, 3, other)
	pulse := isa.Rydberg{Stage: 0, Pairs: []circuit.CZ{circuit.NewCZ(2, 3)}}
	r := CheckPhysical(prog(4, b0, b1, b2, b3, pulse), l)
	if !hasCode(r, StrayPair) {
		t.Fatalf("stray pair not detected: %s", codes(r))
	}
}

func TestCheckPhysicalDetectsStorageInteraction(t *testing.T) {
	a, l := fourQubitBoard()
	// Co-locate the scheduled pair, but in the storage zone.
	b0 := moveTo(a, l.Clone(), 1, site(arch.Storage, 0, 0))
	pulse := isa.Rydberg{Stage: 0, Pairs: []circuit.CZ{circuit.NewCZ(0, 1)}}
	r := CheckPhysical(prog(4, b0, pulse), l)
	if !hasCode(r, StorageInteraction) {
		t.Fatalf("storage-zone interaction not detected: %s", codes(r))
	}
}

func TestCheckPhysicalDetectsSplitPair(t *testing.T) {
	_, l := fourQubitBoard()
	pulse := isa.Rydberg{Stage: 0, Pairs: []circuit.CZ{circuit.NewCZ(0, 1)}}
	r := CheckPhysical(prog(4, pulse), l)
	if !hasCode(r, SplitPair) {
		t.Fatalf("split pair not detected: %s", codes(r))
	}
}

func TestCheckPhysicalDetectsQubitReuse(t *testing.T) {
	a, l := fourQubitBoard()
	s01 := site(arch.Compute, 0, 0)
	b0 := moveTo(a, l.Clone(), 0, s01)
	work := l.Clone()
	work.Move(0, s01)
	b1 := moveTo(a, work, 1, s01)
	pulse := isa.Rydberg{Stage: 0, Pairs: []circuit.CZ{circuit.NewCZ(0, 1), circuit.NewCZ(1, 2)}}
	r := CheckPhysical(prog(4, b0, b1, pulse), l)
	if !hasCode(r, QubitReuse) {
		t.Fatalf("qubit reuse within a stage not detected: %s", codes(r))
	}
}

func TestCheckPhysicalDetectsEmptyInstructions(t *testing.T) {
	_, l := fourQubitBoard()
	r := CheckPhysical(prog(4, isa.MoveBatch{}, isa.Rydberg{Stage: 0}), l)
	n := 0
	for _, v := range r.Violations {
		if v.Code == EmptyInstr {
			n++
		}
	}
	if n != 2 {
		t.Fatalf("%d empty-instr violations, want 2: %s", n, codes(r))
	}
}

func TestCheckEquivalenceDetectsGateLoss(t *testing.T) {
	c := workload.QAOARegular(10, 3, 5)
	res := compile(t, c, "with-storage", 1)
	// Drop one pair from the first pulse.
	for i, in := range res.Program.Instr {
		if p, ok := in.(isa.Rydberg); ok && len(p.Pairs) > 0 {
			p.Pairs = p.Pairs[1:]
			res.Program.Instr[i] = p
			break
		}
	}
	r := CheckEquivalence(c, res.Program)
	if r.OK() {
		t.Fatal("dropped gate not detected")
	}
	if !hasCode(r, GateLoss) && !hasCode(r, BlockOrder) {
		t.Fatalf("dropped gate reported as %s, want gate accounting violation", codes(r))
	}
	if !hasCode(r, StateMismatch) {
		t.Fatalf("state-vector oracle missed the dropped gate: %s", codes(r))
	}
}

func TestCheckEquivalenceDetectsWrongGate(t *testing.T) {
	c := workload.BV(8, 5)
	res := compile(t, c, "non-storage", 1)
	for i, in := range res.Program.Instr {
		if p, ok := in.(isa.Rydberg); ok && len(p.Pairs) > 0 {
			g := p.Pairs[0]
			p.Pairs = append([]circuit.CZ(nil), p.Pairs...)
			p.Pairs[0] = circuit.NewCZ((g.A+1)%c.Qubits, g.B) // retarget the gate
			if p.Pairs[0] == g {
				t.Skip("retarget collided with the original gate")
			}
			res.Program.Instr[i] = p
			break
		}
	}
	r := CheckEquivalence(c, res.Program)
	if r.OK() {
		t.Fatal("retargeted gate not detected")
	}
	if !hasCode(r, StateMismatch) {
		t.Fatalf("oracle missed the retargeted gate: %s", codes(r))
	}
}

func TestCheckEquivalenceDetectsBlockOrderViolation(t *testing.T) {
	c := workload.QSim(10, 6) // many dependent blocks
	res := compile(t, c, "with-storage", 1)
	// Swap the first two pulses that belong to different blocks: find
	// two Rydberg instructions with non-equal pair sets and exchange
	// them.
	var pulseIdx []int
	for i, in := range res.Program.Instr {
		if _, ok := in.(isa.Rydberg); ok {
			pulseIdx = append(pulseIdx, i)
		}
	}
	if len(pulseIdx) < 2 {
		t.Skip("not enough pulses to swap")
	}
	first, last := pulseIdx[0], pulseIdx[len(pulseIdx)-1]
	res.Program.Instr[first], res.Program.Instr[last] = res.Program.Instr[last], res.Program.Instr[first]
	r := CheckEquivalence(c, res.Program)
	if !hasCode(r, BlockOrder) && !hasCode(r, GateLoss) {
		t.Fatalf("cross-block reorder not detected: %s", codes(r))
	}
}

func TestCheckEquivalenceDetectsOneQLoss(t *testing.T) {
	c := workload.VQE(9)
	res := compile(t, c, "with-storage", 1)
	for i, in := range res.Program.Instr {
		if l, ok := in.(isa.OneQLayer); ok {
			l.Count++
			res.Program.Instr[i] = l
			break
		}
	}
	r := CheckEquivalence(c, res.Program)
	if !hasCode(r, OneQLoss) {
		t.Fatalf("1Q count drift not detected: %s", codes(r))
	}
}

// TestCheckEquivalenceStructuralMode: registers beyond MaxOracleQubits
// use the structural mode with exact spot checks; a clean compile
// passes, and merging two pulses of one block below the provably
// minimal stage count is caught.
func TestCheckEquivalenceStructuralMode(t *testing.T) {
	c := workload.QFT(MaxOracleQubits + 2) // serial stages, small blocks
	res := compile(t, c, "with-storage", 1)
	r := CheckEquivalence(c, res.Program)
	if !r.OK() {
		t.Fatalf("clean large compile flagged: %s", r)
	}
	if r.EquivalenceMode != "structural" {
		t.Fatalf("equivalence mode %q, want structural", r.EquivalenceMode)
	}

	// Merge every pulse pair of the largest block into single pulses:
	// fewer pulses than the optimal stage count.
	var pulses []int
	for i, in := range res.Program.Instr {
		if _, ok := in.(isa.Rydberg); ok {
			pulses = append(pulses, i)
		}
	}
	// QFT block 0 has n-1 gates all sharing qubit 0: optimal stage
	// count is n-1. Merge its first two pulses.
	p0 := res.Program.Instr[pulses[0]].(isa.Rydberg)
	p1 := res.Program.Instr[pulses[1]].(isa.Rydberg)
	merged := isa.Rydberg{Stage: p0.Stage, Pairs: append(append([]circuit.CZ(nil), p0.Pairs...), p1.Pairs...)}
	instr := append([]isa.Instruction(nil), res.Program.Instr[:pulses[0]]...)
	instr = append(instr, merged)
	instr = append(instr, res.Program.Instr[pulses[0]+1:pulses[1]]...)
	instr = append(instr, res.Program.Instr[pulses[1]+1:]...)
	tampered := &isa.Program{Name: res.Program.Name, Qubits: res.Program.Qubits, Instr: instr}
	r = CheckEquivalence(c, tampered)
	if !hasCode(r, StageCount) {
		t.Fatalf("below-optimal pulse count not detected: %s", codes(r))
	}
}

func TestReportSummary(t *testing.T) {
	r := &Report{}
	r.add(GateLoss, -1, nil, "one")
	r.add(GateLoss, 3, nil, "two")
	r.add(SplitPair, 5, []int{1, 2}, "three")
	r.EquivalenceMode = "statevec"
	s := r.Summary()
	if s.Violations != 3 || s.Codes[string(GateLoss)] != 2 || s.Codes[string(SplitPair)] != 1 {
		t.Fatalf("summary = %+v", s)
	}
	if len(s.Messages) != 3 || s.EquivalenceMode != "statevec" {
		t.Fatalf("summary = %+v", s)
	}
	clean := (&Report{Instructions: 10}).Summary()
	if clean.Violations != 0 || clean.Codes != nil || clean.Messages != nil {
		t.Fatalf("clean summary = %+v", clean)
	}
}
