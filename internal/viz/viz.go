// Package viz renders qubit layouts as ASCII grids for debugging and for
// the CLI's -layouts flag. The computation zone is drawn on top (rows
// descending), then the inter-zone gap, then the storage zone, matching
// the physical geometry of the zoned architecture (Sec. 2.1 of the
// paper).
package viz

import (
	"fmt"
	"strings"

	"powermove/internal/arch"
	"powermove/internal/layout"
)

// Layout renders the occupancy of every site:
//
//	.     empty site
//	o     one qubit
//	8     two qubits (an interacting pair)
//
// Each zone is labeled, rows are annotated with their index, and a legend
// listing qubit positions follows when the register is small enough to
// keep it readable.
func Layout(l *layout.Layout) string {
	var b strings.Builder
	a := l.Arch()
	b.WriteString("computation zone\n")
	writeZone(&b, l, arch.Compute, a.ComputeRows, a.ComputeCols)
	b.WriteString(strings.Repeat("~", a.StorageCols*2+4))
	b.WriteString("  (30 um gap)\n")
	b.WriteString("storage zone\n")
	writeZone(&b, l, arch.Storage, a.StorageRows, a.StorageCols)
	if l.Qubits() <= 30 {
		b.WriteString(legend(l))
	}
	return b.String()
}

func writeZone(b *strings.Builder, l *layout.Layout, z arch.Zone, rows, cols int) {
	for r := rows - 1; r >= 0; r-- {
		fmt.Fprintf(b, "%3d ", r)
		for c := 0; c < cols; c++ {
			switch l.Occupancy(arch.Site{Zone: z, Row: r, Col: c}) {
			case 0:
				b.WriteString(". ")
			case 1:
				b.WriteString("o ")
			default:
				b.WriteString("8 ")
			}
		}
		b.WriteByte('\n')
	}
}

func legend(l *layout.Layout) string {
	var b strings.Builder
	b.WriteString("qubits: ")
	for q := 0; q < l.Qubits(); q++ {
		if q > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "q%d@%v", q, l.SiteOf(q))
	}
	b.WriteByte('\n')
	return b.String()
}

// Occupancy summarizes zone populations in one line, for progress logs.
func Occupancy(l *layout.Layout) string {
	return fmt.Sprintf("compute: %d qubits, storage: %d qubits",
		len(l.InZone(arch.Compute)), len(l.InZone(arch.Storage)))
}
