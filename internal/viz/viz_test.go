package viz

import (
	"strings"
	"testing"

	"powermove/internal/arch"
	"powermove/internal/layout"
)

func TestLayoutRendering(t *testing.T) {
	a := arch.New(arch.Config{Qubits: 4}) // 2x2 compute, 4x2 storage
	l := layout.New(a, 3)
	l.Place(0, arch.Site{Zone: arch.Compute, Row: 0, Col: 0})
	l.Place(1, arch.Site{Zone: arch.Compute, Row: 0, Col: 0}) // pair with 0
	l.Place(2, arch.Site{Zone: arch.Storage, Row: 3, Col: 1})

	out := Layout(l)
	if !strings.Contains(out, "computation zone") || !strings.Contains(out, "storage zone") {
		t.Fatalf("zone headers missing:\n%s", out)
	}
	if !strings.Contains(out, "8") {
		t.Errorf("pair marker missing:\n%s", out)
	}
	if !strings.Contains(out, "o") {
		t.Errorf("single marker missing:\n%s", out)
	}
	if !strings.Contains(out, "q2@storage[3,1]") {
		t.Errorf("legend missing qubit 2:\n%s", out)
	}
	// Compute rows are drawn top-down: row 1 line precedes row 0 line.
	r1 := strings.Index(out, "  1 ")
	r0 := strings.Index(out, "  0 ")
	if r1 < 0 || r0 < 0 || r1 > r0 {
		t.Errorf("rows not rendered descending:\n%s", out)
	}
}

func TestLegendSuppressedForLargeRegisters(t *testing.T) {
	a := arch.New(arch.Config{Qubits: 64})
	l := layout.New(a, 64)
	l.PlaceAll(arch.Storage)
	out := Layout(l)
	if strings.Contains(out, "q0@") {
		t.Error("legend rendered for a 64-qubit register")
	}
}

func TestOccupancySummary(t *testing.T) {
	a := arch.New(arch.Config{Qubits: 4})
	l := layout.New(a, 4)
	l.PlaceAll(arch.Compute)
	l.Move(3, arch.Site{Zone: arch.Storage, Row: 0, Col: 0})
	if got := Occupancy(l); got != "compute: 3 qubits, storage: 1 qubits" {
		t.Errorf("Occupancy = %q", got)
	}
}
