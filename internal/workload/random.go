// Seeded random circuit and architecture generators — the input side of
// the differential verification subsystem (internal/verify). Unlike the
// paper benchmarks above, these sweep the whole IR shape space: mixed
// 1Q layers and CZ blocks, parameterized depth and connectivity, and
// architectures with spare capacity and multiple AOD arrays, so the
// fuzzing harness explores schedules the curated workloads never
// produce. All generators are pure functions of their configuration and
// seed.
package workload

import (
	"fmt"
	"math/rand"

	"powermove/internal/arch"
	"powermove/internal/circuit"
)

// RandomConfig parameterizes Random. The zero value of each optional
// field selects a sensible default.
type RandomConfig struct {
	// Qubits is the register size. Required, at least 2.
	Qubits int
	// Blocks is the number of dependent CZ blocks; 0 selects 4.
	Blocks int
	// Density is the probability that any given qubit pair carries a CZ
	// gate within one block, controlling connectivity; 0 selects 0.3.
	// Must lie in (0, 1].
	Density float64
	// MaxOneQ bounds the random per-block 1Q-layer size; 0 selects
	// Qubits. Negative disables 1Q layers entirely.
	MaxOneQ int
}

// Random returns a seeded random circuit: cfg.Blocks dependent blocks,
// each holding a random 1Q layer and a Density-random subset of the
// qubit pairs, deduplicated. The same (cfg, seed) always produces the
// same circuit, and the result always passes circuit.Validate.
// It panics on an invalid configuration.
func Random(cfg RandomConfig, seed int64) *circuit.Circuit {
	if cfg.Qubits < 2 {
		panic(fmt.Sprintf("workload: random circuit needs at least 2 qubits, got %d", cfg.Qubits))
	}
	blocks := cfg.Blocks
	if blocks == 0 {
		blocks = 4
	}
	if blocks < 0 {
		panic(fmt.Sprintf("workload: negative block count %d", blocks))
	}
	density := cfg.Density
	if density == 0 {
		density = 0.3
	}
	if density < 0 || density > 1 {
		panic(fmt.Sprintf("workload: density %v outside (0, 1]", density))
	}
	maxOneQ := cfg.MaxOneQ
	if maxOneQ == 0 {
		maxOneQ = cfg.Qubits
	}

	rng := rand.New(rand.NewSource(seed))
	c := circuit.New(fmt.Sprintf("random-%d-b%d@%d", cfg.Qubits, blocks, seed), cfg.Qubits)
	for b := 0; b < blocks; b++ {
		var gates []circuit.CZ
		for u := 0; u < cfg.Qubits; u++ {
			for v := u + 1; v < cfg.Qubits; v++ {
				if rng.Float64() < density {
					gates = append(gates, circuit.NewCZ(u, v))
				}
			}
		}
		oneQ := 0
		if maxOneQ > 0 {
			oneQ = rng.Intn(maxOneQ + 1)
		}
		c.AddBlock(oneQ, dedupeCZ(gates)...)
	}
	return c
}

// RandomArch returns a seeded random architecture able to host a
// circuit of the given size: the Table-2 geometry for a qubit budget
// drawn from [qubits, 2*qubits] (spare capacity exercises non-trivial
// placement and routing slack) and 1 to 4 AOD arrays.
// It panics if qubits is not positive.
func RandomArch(qubits int, seed int64) *arch.Arch {
	if qubits <= 0 {
		panic(fmt.Sprintf("workload: non-positive qubit count %d", qubits))
	}
	rng := rand.New(rand.NewSource(seed))
	return arch.New(arch.Config{
		Qubits: qubits + rng.Intn(qubits+1),
		AODs:   1 + rng.Intn(4),
	})
}

// dedupeCZ removes duplicate gates while preserving first-occurrence
// order, the guard every generator routes its gate lists through so a
// buggy or adversarial edge source can never produce a block that fails
// circuit.Validate. (circuit.NewCZ already rejects self-loops; this
// closes the duplicate half.) The input slice is reused.
func dedupeCZ(gates []circuit.CZ) []circuit.CZ {
	if len(gates) < 2 {
		return gates
	}
	seen := make(map[circuit.CZ]bool, len(gates))
	out := gates[:0]
	for _, g := range gates {
		if seen[g] {
			continue
		}
		seen[g] = true
		out = append(out, g)
	}
	return out
}
