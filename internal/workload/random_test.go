package workload

import (
	"testing"

	"powermove/internal/circuit"
)

func TestRandomCircuitIsValidAndDeterministic(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		cfg := RandomConfig{Qubits: 2 + int(seed)%11, Blocks: 1 + int(seed)%6, Density: 0.05 + 0.9*float64(seed)/25}
		c := Random(cfg, seed)
		mustValidate(t, c)
		if c.Qubits != cfg.Qubits || len(c.Blocks) != cfg.Blocks {
			t.Fatalf("seed %d: got %d qubits / %d blocks, want %d / %d",
				seed, c.Qubits, len(c.Blocks), cfg.Qubits, cfg.Blocks)
		}
		again := Random(cfg, seed)
		if c.String() != again.String() || c.CZCount() != again.CZCount() {
			t.Fatalf("seed %d: generator is not deterministic", seed)
		}
		for bi := range c.Blocks {
			for gi, g := range c.Blocks[bi].Gates {
				if again.Blocks[bi].Gates[gi] != g {
					t.Fatalf("seed %d: block %d gate %d differs across identical runs", seed, bi, gi)
				}
			}
		}
	}
}

func TestRandomCircuitDefaults(t *testing.T) {
	c := Random(RandomConfig{Qubits: 8}, 3)
	mustValidate(t, c)
	if len(c.Blocks) != 4 {
		t.Errorf("default blocks = %d, want 4", len(c.Blocks))
	}
}

func TestRandomCircuitRejectsBadConfig(t *testing.T) {
	for _, cfg := range []RandomConfig{
		{Qubits: 1},
		{Qubits: 8, Blocks: -1},
		{Qubits: 8, Density: 1.5},
		{Qubits: 8, Density: -0.1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Random(%+v) did not panic", cfg)
				}
			}()
			Random(cfg, 1)
		}()
	}
}

func TestRandomArchHostsCircuit(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		n := 2 + int(seed)
		a := RandomArch(n, seed)
		if a.ComputeSites() < n {
			t.Fatalf("seed %d: %d compute sites for %d qubits", seed, a.ComputeSites(), n)
		}
		if a.StorageSites() < n {
			t.Fatalf("seed %d: %d storage sites for %d qubits", seed, a.StorageSites(), n)
		}
		if a.AODs < 1 || a.AODs > 4 {
			t.Fatalf("seed %d: AOD count %d outside [1, 4]", seed, a.AODs)
		}
		again := RandomArch(n, seed)
		if a.ComputeRows != again.ComputeRows || a.ComputeCols != again.ComputeCols ||
			a.StorageRows != again.StorageRows || a.AODs != again.AODs {
			t.Fatalf("seed %d: arch generator is not deterministic", seed)
		}
	}
}

// TestDedupeCZ is the regression test for the generator guard: duplicate
// gates collapse to their first occurrence, order is otherwise
// preserved, and duplicate-free inputs come back untouched.
func TestDedupeCZ(t *testing.T) {
	g01, g12, g23 := circuit.NewCZ(0, 1), circuit.NewCZ(1, 2), circuit.NewCZ(2, 3)
	got := dedupeCZ([]circuit.CZ{g01, g12, g01, g23, g12, g01})
	want := []circuit.CZ{g01, g12, g23}
	if len(got) != len(want) {
		t.Fatalf("dedupeCZ kept %d gates, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dedupeCZ[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	clean := []circuit.CZ{g23, g01}
	kept := dedupeCZ(clean)
	if len(kept) != 2 || kept[0] != g23 || kept[1] != g01 {
		t.Fatalf("dedupeCZ reordered a clean list: %v", kept)
	}
}

// TestGeneratorsNeverEmitDuplicateGates sweeps every randomized
// generator across seeds and asserts the produced circuits validate —
// the end-to-end form of the dedupe guard.
func TestGeneratorsNeverEmitDuplicateGates(t *testing.T) {
	for seed := int64(1); seed <= 15; seed++ {
		mustValidate(t, QAOARegular(18, 3, seed))
		mustValidate(t, QAOARandom(12, seed))
		mustValidate(t, BV(10, seed))
		mustValidate(t, QSim(12, seed))
		mustValidate(t, Random(RandomConfig{Qubits: 10, Blocks: 5, Density: 0.5}, seed))
	}
}
