// Package workload generates the benchmark circuits of Sec. 7.1 of the
// paper, in the synthesized 1Q-layer / CZ-block form of internal/circuit:
//
//   - QAOA on random 3- and 4-regular graphs, and on G(n, 0.5) random
//     graphs: one commutable ZZ block per QAOA layer.
//   - QFT: one commutable controlled-phase block per target qubit; all
//     gates of a block share that qubit, so every stage holds one gate —
//     the structure responsible for QFT's many Rydberg excitations.
//   - Bernstein-Vazirani with a balanced random secret: every CZ touches
//     the ancilla.
//   - VQE with a hardware-efficient ansatz: repetitions of a rotation
//     layer followed by a linear-entanglement CZ chain.
//   - QSim: random Pauli strings (probability 0.3 of a non-identity
//     factor per qubit), each compiled to a down-ladder block and an
//     up-ladder block of entangling gates.
//
// All generators take an explicit seed, so every benchmark instance is
// reproducible.
package workload

import (
	"fmt"
	"math/rand"

	"powermove/internal/circuit"
	"powermove/internal/graphutil"
)

// QAOARegular returns a depth-1 QAOA circuit for MaxCut on a random
// d-regular graph with n vertices: an initial Hadamard layer, one
// commutable ZZ block with one CZ per graph edge, and the mixer layer.
func QAOARegular(n, d int, seed int64) *circuit.Circuit {
	return QAOARegularP(n, d, 1, seed)
}

// QAOARegularP generalizes QAOARegular to depth p: each QAOA layer
// contributes one commutable ZZ block over the graph's edges followed by
// a mixer layer of single-qubit rotations. Successive ZZ blocks repeat
// the same gate pairs, but the intervening mixers make them dependent, so
// each is a separate block. It panics if p is not positive.
func QAOARegularP(n, d, p int, seed int64) *circuit.Circuit {
	if p <= 0 {
		panic(fmt.Sprintf("workload: non-positive QAOA depth %d", p))
	}
	rng := rand.New(rand.NewSource(seed))
	g := graphutil.RandomRegular(n, d, rng)
	name := fmt.Sprintf("QAOA-regular%d-%d", d, n)
	if p > 1 {
		name = fmt.Sprintf("%s-p%d", name, p)
	}
	c := circuit.New(name, n)
	gates := edgesToGates(g)
	for layer := 0; layer < p; layer++ {
		c.AddBlock(n, gates...)
	}
	c.AddBlock(n) // final mixer layer
	return c
}

// QAOARandom returns a depth-1 QAOA circuit on an Erdos-Renyi G(n, 0.5)
// graph: ZZ gates between each qubit pair with 50% probability (Sec. 7.1).
func QAOARandom(n int, seed int64) *circuit.Circuit {
	rng := rand.New(rand.NewSource(seed))
	g := graphutil.RandomGNP(n, 0.5, rng)
	c := circuit.New(fmt.Sprintf("QAOA-random-%d", n), n)
	c.AddBlock(n, edgesToGates(g)...)
	c.AddBlock(n)
	return c
}

// QFT returns the n-qubit quantum Fourier transform. For each qubit k the
// circuit applies a Hadamard followed by the controlled-phase gates
// CP(k, j) for all j > k; the phases are diagonal and commute, forming one
// CZ block per k, but they all share qubit k and therefore serialize into
// single-gate stages.
func QFT(n int) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("QFT-%d", n), n)
	for k := 0; k < n; k++ {
		gates := make([]circuit.CZ, 0, n-k-1)
		for j := k + 1; j < n; j++ {
			gates = append(gates, circuit.NewCZ(k, j))
		}
		c.AddBlock(1, gates...) // the Hadamard on qubit k
	}
	return c
}

// BV returns a Bernstein-Vazirani circuit on n qubits: n-1 data qubits, an
// ancilla (qubit n-1), and a random secret string with an even split of
// zeros and ones (Sec. 7.1). Each secret 1-bit contributes one CZ between
// its data qubit and the ancilla; the shared ancilla serializes the block
// into single-gate stages.
func BV(n int, seed int64) *circuit.Circuit {
	if n < 2 {
		panic(fmt.Sprintf("workload: BV needs at least 2 qubits, got %d", n))
	}
	rng := rand.New(rand.NewSource(seed))
	data := n - 1
	ones := data / 2
	secret := make([]bool, data)
	for _, i := range rng.Perm(data)[:ones] {
		secret[i] = true
	}
	c := circuit.New(fmt.Sprintf("BV-%d", n), n)
	var gates []circuit.CZ
	for i, bit := range secret {
		if bit {
			gates = append(gates, circuit.NewCZ(i, n-1))
		}
	}
	c.AddBlock(n, dedupeCZ(gates)...) // initial Hadamard layer on all qubits
	c.AddBlock(n)                     // final Hadamard layer
	return c
}

// VQEReps is the number of ansatz repetitions in the VQE benchmark. Two
// repetitions of the linear-entanglement ansatz reproduce the paper's
// reported gate counts (about 2(n-1) CZ gates).
const VQEReps = 2

// VQE returns a hardware-efficient VQE ansatz on n qubits: VQEReps
// repetitions of a full single-qubit rotation layer followed by a chain of
// CZ gates on neighboring qubits, plus a final rotation layer.
func VQE(n int) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("VQE-%d", n), n)
	for r := 0; r < VQEReps; r++ {
		gates := make([]circuit.CZ, 0, n-1)
		for i := 0; i+1 < n; i++ {
			gates = append(gates, circuit.NewCZ(i, i+1))
		}
		c.AddBlock(n, gates...)
	}
	c.AddBlock(n)
	return c
}

// QSimStrings is the number of random Pauli strings per QSim circuit
// (Sec. 7.1: ten Pauli strings per circuit).
const QSimStrings = 10

// QSimProb is the per-qubit probability of a non-identity Pauli factor.
const QSimProb = 0.3

// QSim returns a random quantum-simulation circuit: QSimStrings Pauli
// strings, each with probability QSimProb of acting on any given qubit.
// The exponential of a weight-k string compiles to a basis-change 1Q
// layer, a (k-1)-gate entangling down-ladder, the rotation, and the
// mirrored up-ladder; the two ladders form separate dependent CZ blocks.
func QSim(n int, seed int64) *circuit.Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := circuit.New(fmt.Sprintf("QSIM-rand-%d", n), n)
	for s := 0; s < QSimStrings; s++ {
		var support []int
		for q := 0; q < n; q++ {
			if rng.Float64() < QSimProb {
				support = append(support, q)
			}
		}
		switch len(support) {
		case 0:
			continue
		case 1:
			c.AddBlock(1) // single-qubit rotation only
			continue
		}
		down := make([]circuit.CZ, 0, len(support)-1)
		for i := 0; i+1 < len(support); i++ {
			down = append(down, circuit.NewCZ(support[i], support[i+1]))
		}
		down = dedupeCZ(down)
		up := make([]circuit.CZ, len(down))
		for i, g := range down {
			up[len(down)-1-i] = g
		}
		c.AddBlock(len(support), down...) // basis change + down-ladder
		c.AddBlock(1, up...)              // central rotation + up-ladder
	}
	return c
}

func edgesToGates(g *graphutil.Graph) []circuit.CZ {
	edges := g.Edges()
	gates := make([]circuit.CZ, len(edges))
	for i, e := range edges {
		gates[i] = circuit.NewCZ(e[0], e[1])
	}
	// graphutil.Graph collapses parallel edges already; the dedupe guard
	// keeps that a local implementation detail rather than a correctness
	// dependency of every circuit built from a graph.
	return dedupeCZ(gates)
}
