package workload

import (
	"testing"

	"powermove/internal/circuit"
)

func mustValidate(t *testing.T, c *circuit.Circuit) {
	t.Helper()
	if err := c.Validate(); err != nil {
		t.Fatalf("%s: %v", c.Name, err)
	}
}

func TestQAOARegularGateCount(t *testing.T) {
	for _, tc := range []struct{ n, d int }{{30, 3}, {40, 3}, {100, 3}, {30, 4}, {80, 4}} {
		c := QAOARegular(tc.n, tc.d, 7)
		mustValidate(t, c)
		if got, want := c.CZCount(), tc.n*tc.d/2; got != want {
			t.Errorf("QAOA-regular%d-%d: %d CZ gates, want %d", tc.d, tc.n, got, want)
		}
		if got, want := c.OneQCount(), 2*tc.n; got != want {
			t.Errorf("QAOA-regular%d-%d: %d 1Q gates, want %d", tc.d, tc.n, got, want)
		}
		// One commutable ZZ block plus the mixer layer.
		if len(c.Blocks) != 2 {
			t.Errorf("QAOA-regular%d-%d: %d blocks, want 2", tc.d, tc.n, len(c.Blocks))
		}
		// Every qubit participates: a d-regular graph has no isolated
		// vertices.
		if got := len(c.Blocks[0].Qubits()); got != tc.n {
			t.Errorf("QAOA-regular%d-%d: block touches %d qubits, want %d", tc.d, tc.n, got, tc.n)
		}
	}
}

func TestQAOARandomDensity(t *testing.T) {
	c := QAOARandom(30, 3)
	mustValidate(t, c)
	max := 30 * 29 / 2
	got := c.CZCount()
	if got < max/3 || got > 2*max/3 {
		t.Errorf("QAOA-random-30 has %d of %d possible edges; expected near half", got, max)
	}
}

func TestQFTStructure(t *testing.T) {
	n := 10
	c := QFT(n)
	mustValidate(t, c)
	if got, want := c.CZCount(), n*(n-1)/2; got != want {
		t.Errorf("QFT-%d: %d CZ gates, want %d", n, got, want)
	}
	if got := len(c.Blocks); got != n {
		t.Errorf("QFT-%d: %d blocks, want %d", n, got, n)
	}
	// Block k holds the controlled phases from qubit k to all later
	// qubits, so every gate of block k involves qubit k.
	for k, b := range c.Blocks {
		if len(b.Gates) != n-k-1 {
			t.Errorf("QFT block %d has %d gates, want %d", k, len(b.Gates), n-k-1)
		}
		for _, g := range b.Gates {
			if !g.Acts(k) {
				t.Errorf("QFT block %d gate %v does not act on qubit %d", k, g, k)
			}
		}
		if b.OneQ != 1 {
			t.Errorf("QFT block %d has %d 1Q gates, want 1 (the Hadamard)", k, b.OneQ)
		}
	}
}

func TestBVBalancedSecret(t *testing.T) {
	for _, n := range []int{14, 50, 70, 2, 3} {
		c := BV(n, 5)
		mustValidate(t, c)
		// Half the data qubits (rounded down) carry a 1-bit; each
		// contributes one CZ with the ancilla.
		want := (n - 1) / 2
		if got := c.CZCount(); got != want {
			t.Errorf("BV-%d: %d CZ gates, want %d", n, got, want)
		}
		for _, b := range c.Blocks {
			for _, g := range b.Gates {
				if !g.Acts(n - 1) {
					t.Errorf("BV-%d: gate %v does not touch the ancilla", n, g)
				}
			}
		}
	}
}

func TestBVPanicsOnTooFewQubits(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("BV(1) did not panic")
		}
	}()
	BV(1, 0)
}

func TestVQEStructure(t *testing.T) {
	n := 30
	c := VQE(n)
	mustValidate(t, c)
	if got, want := c.CZCount(), VQEReps*(n-1); got != want {
		t.Errorf("VQE-%d: %d CZ gates, want %d", n, got, want)
	}
	if got, want := len(c.Blocks), VQEReps+1; got != want {
		t.Errorf("VQE-%d: %d blocks, want %d", n, got, want)
	}
	// Entanglement is a chain: every gate joins adjacent qubits.
	for _, b := range c.Blocks {
		for _, g := range b.Gates {
			if g.B != g.A+1 {
				t.Errorf("VQE gate %v is not nearest-neighbor", g)
			}
		}
	}
}

func TestQSimStructure(t *testing.T) {
	c := QSim(20, 9)
	mustValidate(t, c)
	// Ladders mirror: every down block is followed by an up block with
	// the same gates reversed.
	for i := 0; i+1 < len(c.Blocks); i += 2 {
		down, up := c.Blocks[i].Gates, c.Blocks[i+1].Gates
		if len(down) == 0 {
			continue // weight-<2 string contributes a 1Q-only block
		}
		if len(down) != len(up) {
			t.Fatalf("blocks %d/%d: ladder lengths differ (%d vs %d)", i, i+1, len(down), len(up))
		}
		for j := range down {
			if down[j] != up[len(up)-1-j] {
				t.Fatalf("blocks %d/%d: up-ladder is not the mirror of the down-ladder", i, i+1)
			}
		}
	}
	if c.CZCount() == 0 {
		t.Error("QSim-20 generated no entangling gates; weight-0.3 strings should")
	}
}

func TestGeneratorsDeterministicBySeed(t *testing.T) {
	type gen func() *circuit.Circuit
	cases := map[string][2]gen{
		"QAOA-regular": {
			func() *circuit.Circuit { return QAOARegular(20, 3, 42) },
			func() *circuit.Circuit { return QAOARegular(20, 3, 42) },
		},
		"QAOA-random": {
			func() *circuit.Circuit { return QAOARandom(20, 42) },
			func() *circuit.Circuit { return QAOARandom(20, 42) },
		},
		"BV": {
			func() *circuit.Circuit { return BV(20, 42) },
			func() *circuit.Circuit { return BV(20, 42) },
		},
		"QSim": {
			func() *circuit.Circuit { return QSim(20, 42) },
			func() *circuit.Circuit { return QSim(20, 42) },
		},
	}
	for name, pair := range cases {
		a, b := pair[0](), pair[1]()
		if len(a.Blocks) != len(b.Blocks) || a.CZCount() != b.CZCount() {
			t.Errorf("%s: same seed produced different circuits", name)
			continue
		}
		for bi := range a.Blocks {
			for gi := range a.Blocks[bi].Gates {
				if a.Blocks[bi].Gates[gi] != b.Blocks[bi].Gates[gi] {
					t.Errorf("%s: same seed produced different gates", name)
				}
			}
		}
	}
}

func TestGeneratorsVaryBySeed(t *testing.T) {
	a := QAOARandom(20, 1)
	b := QAOARandom(20, 2)
	if a.CZCount() == b.CZCount() {
		// Counts can coincide; compare gate lists.
		same := true
		for i := range a.Blocks[0].Gates {
			if i >= len(b.Blocks[0].Gates) || a.Blocks[0].Gates[i] != b.Blocks[0].Gates[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical QAOA-random circuits")
		}
	}
}

func TestNames(t *testing.T) {
	cases := map[string]string{
		QAOARegular(30, 3, 1).Name: "QAOA-regular3-30",
		QAOARegular(40, 4, 1).Name: "QAOA-regular4-40",
		QAOARandom(20, 1).Name:     "QAOA-random-20",
		QFT(18).Name:               "QFT-18",
		BV(14, 1).Name:             "BV-14",
		VQE(30).Name:               "VQE-30",
		QSim(10, 1).Name:           "QSIM-rand-10",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("name = %q, want %q", got, want)
		}
	}
}

func TestQAOARegularP(t *testing.T) {
	c := QAOARegularP(20, 3, 3, 7)
	mustValidate(t, c)
	if got, want := c.CZCount(), 3*20*3/2; got != want {
		t.Errorf("p=3 circuit has %d CZ gates, want %d", got, want)
	}
	if got := len(c.Blocks); got != 4 {
		t.Errorf("p=3 circuit has %d blocks, want 4 (3 ZZ + mixer)", got)
	}
	if c.Name != "QAOA-regular3-20-p3" {
		t.Errorf("name = %q", c.Name)
	}
	// Depth 1 keeps the historical name.
	if QAOARegularP(20, 3, 1, 7).Name != "QAOA-regular3-20" {
		t.Error("p=1 name changed")
	}
	defer func() {
		if recover() == nil {
			t.Error("p=0 did not panic")
		}
	}()
	QAOARegularP(10, 3, 0, 1)
}
