// Package powermove is a compiler for neutral-atom quantum computers with
// a zoned architecture, reproducing "PowerMove: Optimizing Compilation for
// Neutral Atom Quantum Computers with Zoned Architecture" (ASPLOS 2025).
//
// The compiler lowers circuits of commutable CZ blocks onto hardware with
// a computation zone, a storage zone, and one or more AOD arrays for
// collective qubit movement. Its three components — the Stage Scheduler,
// the Continuous Router, and the Coll-Move Scheduler — exploit the
// interplay between gate scheduling, qubit allocation, qubit movement,
// and the zoned architecture to cut excitation and decoherence errors and
// execution time relative to revert-to-initial-layout compilation.
//
// Typical use:
//
//	circ := powermove.QAOARegular(30, 3, 42)        // or ParseQASM(...)
//	hw := powermove.DefaultArch(circ.Qubits, 1)     // Table-2 geometry
//	run, err := powermove.CompileAndRun(circ, hw, powermove.Options{
//		UseStorage: true,
//	})
//	if err != nil { ... }
//	fmt.Println(run.Execution.Fidelity, run.Execution.Time)
//
// The package is a thin facade over the internal packages; everything here
// is re-exported so downstream code needs only this import.
package powermove

import (
	"context"
	"encoding/json"
	"fmt"

	"powermove/internal/arch"
	"powermove/internal/circuit"
	"powermove/internal/compiler"
	"powermove/internal/core"
	"powermove/internal/enola"
	"powermove/internal/isa"
	"powermove/internal/layout"
	"powermove/internal/pipeline"
	"powermove/internal/qasm"
	"powermove/internal/service"
	"powermove/internal/sim"
	"powermove/internal/store"
	"powermove/internal/trace"
	"powermove/internal/verify"
	"powermove/internal/viz"
	"powermove/internal/workload"
)

// Core types re-exported for library consumers.
type (
	// Circuit is the synthesized quantum-program IR: alternating
	// single-qubit layers and commutable CZ blocks.
	Circuit = circuit.Circuit
	// CZ is a two-qubit controlled-Z gate.
	CZ = circuit.CZ
	// Arch describes one zoned hardware instance.
	Arch = arch.Arch
	// Options configures a PowerMove compilation.
	Options = core.Options
	// Program is a compiled instruction stream.
	Program = isa.Program
	// Layout assigns qubits to trap sites.
	Layout = layout.Layout
	// ExecutionResult carries the fidelity, timing, and event counts of
	// one simulated execution.
	ExecutionResult = sim.Result
	// CompileResult carries a compiled program, its required initial
	// layout, and compiler statistics.
	CompileResult = core.Result
	// EnolaOptions configures the Enola baseline compiler.
	EnolaOptions = enola.Options
	// Stats is the shared compiler statistics type of both schemes,
	// including the per-pass PassStats breakdown.
	Stats = compiler.Stats
	// PassStats is a compilation's per-pass breakdown: self-time, call
	// counts, and counter deltas per compiler pass, in execution order.
	PassStats = compiler.PassStats
	// PassStat is one pass's accounting within a PassStats breakdown.
	PassStat = compiler.PassStat
)

// NewCircuit returns an empty circuit on n qubits; add blocks with
// Circuit.AddBlock and gates with NewCZ.
func NewCircuit(name string, n int) *Circuit { return circuit.New(name, n) }

// NewCZ returns the normalized CZ gate on qubits a and b.
func NewCZ(a, b int) CZ { return circuit.NewCZ(a, b) }

// DefaultArch builds the paper's default hardware geometry (Table 2) for a
// program of the given size: a ceil(sqrt(n))-square computation grid and a
// double-height storage grid below it, with the given number of AOD
// arrays (1 in the paper's default configuration).
func DefaultArch(qubits, aods int) *Arch {
	return arch.New(arch.Config{Qubits: qubits, AODs: aods})
}

// Compile lowers circ for hw with the PowerMove pipeline.
func Compile(circ *Circuit, hw *Arch, opts Options) (*CompileResult, error) {
	return core.Compile(circ, hw, opts)
}

// CompileEnola lowers circ with the Enola baseline (revert-to-home
// movement, no storage zone), for comparison studies.
func CompileEnola(circ *Circuit, hw *Arch, opts EnolaOptions) (*enola.Result, error) {
	return enola.Compile(circ, hw, opts)
}

// Execute runs a compiled program on the simulated hardware, validating
// every movement and occupancy constraint and returning fidelity and
// timing per the paper's model (Sec. 2.2).
func Execute(prog *Program, initial *Layout) (*ExecutionResult, error) {
	return sim.Execute(prog, initial)
}

// ExecuteWithTrace runs a compiled program like Execute and additionally
// returns the execution timeline (one event per instruction), renderable
// as an ASCII Gantt chart or serializable to JSON.
func ExecuteWithTrace(prog *Program, initial *Layout) (*ExecutionResult, *Trace, error) {
	return sim.ExecuteWithTrace(prog, initial)
}

// Trace is an execution timeline recorded by ExecuteWithTrace.
type Trace = trace.Trace

// Differential-verification types re-exported from internal/verify.
type (
	// VerifyReport is a full verification report: every structured
	// violation the physical legality checker and the semantic
	// equivalence oracle found, plus the replay accounting.
	VerifyReport = verify.Report
	// VerifyViolation is one structured diagnostic of a VerifyReport.
	VerifyViolation = verify.Violation
	// VerifySummary is the serializable digest of a VerifyReport that
	// rides on service responses and batch outcomes.
	VerifySummary = verify.Summary
	// VerifyItem is one unit of batched verification: a source circuit,
	// its compiled program, and the initial layout.
	VerifyItem = verify.Item
	// VerifyOracleStats accounts the state-vector oracle work a
	// verification performed (states simulated, amplitudes, gate-fusion
	// counts).
	VerifyOracleStats = verify.OracleStats
)

// Verify runs the differential verification subsystem over a compiled
// result: the physical legality checker replays the program against the
// architecture model (AOD order preservation, trap exclusivity,
// blockade spacing, stage-transition consistency), and the semantic
// equivalence oracle proves the program means circ (state-vector
// comparison up to verify.MaxOracleQubits qubits, structural gate
// accounting plus exact spot checks beyond). circ must be the circuit
// res was compiled from; a compilation run with Options.FuseBlocks
// reorders across fused block boundaries by design, so verify such
// results against the fused circuit (internal/fuse) instead of the
// original.
func Verify(circ *Circuit, res *CompileResult) *VerifyReport {
	return verify.All(circ, res.Program, res.Initial)
}

// VerifyBatch verifies a whole corpus of compiled results at once,
// simulating every state-vector oracle case through the batched engine
// (internal/statevec.Batch) instead of one independent simulation per
// item. Verdicts are bit-identical to calling Verify per item; the
// returned stats aggregate the oracle work (workers <= 0 selects the
// simulator's default parallelism).
func VerifyBatch(items []VerifyItem, workers int) ([]*VerifyReport, VerifyOracleStats) {
	return verify.AllBatch(items, verify.BatchOptions{Workers: workers})
}

// RenderLayout draws a layout as an ASCII occupancy grid (computation
// zone on top, storage zone below).
func RenderLayout(l *Layout) string { return viz.Layout(l) }

// RunResult pairs a compilation with its simulated execution.
type RunResult struct {
	Compile   *CompileResult
	Execution *ExecutionResult
}

// CompileAndRun compiles circ and executes it from the compiler's initial
// layout in one step.
func CompileAndRun(circ *Circuit, hw *Arch, opts Options) (*RunResult, error) {
	cr, err := core.Compile(circ, hw, opts)
	if err != nil {
		return nil, err
	}
	exec, err := sim.Execute(cr.Program, cr.Initial)
	if err != nil {
		return nil, err
	}
	return &RunResult{Compile: cr, Execution: exec}, nil
}

// Batch-compilation types re-exported from the concurrent engine of
// internal/pipeline.
type (
	// BatchJob is one compile-and-simulate unit of a batch: a circuit
	// generator plus the (benchmark, scheme, AOD-count) key that
	// identifies and caches it.
	BatchJob = pipeline.Job
	// BatchKey identifies one evaluation point and doubles as its
	// cache key.
	BatchKey = pipeline.Key
	// BatchResult pairs a job's outcome with its timing and cache
	// provenance.
	BatchResult = pipeline.Result
	// BatchOutcome is the evaluation payload of one job.
	BatchOutcome = pipeline.Outcome
	// BatchOptions bounds worker concurrency and wires streaming
	// progress and a shared cache.
	BatchOptions = pipeline.Options
	// BatchStats aggregates a run's engine accounting.
	BatchStats = pipeline.Stats
	// BatchCache is a keyed outcome cache shareable across batches.
	BatchCache = pipeline.Cache
	// Scheme selects the compiler of a batch job: SchemeEnola,
	// SchemeNonStorage, or SchemeWithStorage.
	Scheme = pipeline.Scheme
)

// The compilation schemes a batch job can select.
const (
	SchemeEnola       = pipeline.Enola
	SchemeNonStorage  = pipeline.NonStorage
	SchemeWithStorage = pipeline.WithStorage
)

// NewBatchJob builds the standard batch job for one evaluation point: gen
// generates the circuit (deterministically — derive any seed from bench,
// never from the clock) and the architecture defaults to the Table-2
// geometry with the given AOD count.
func NewBatchJob(bench string, scheme Scheme, aods int, gen func() (*Circuit, error)) BatchJob {
	return pipeline.NewJob(bench, scheme, aods, gen)
}

// NewBatchCache returns an empty shared cache for CompileBatch.
func NewBatchCache() *BatchCache { return pipeline.NewCache() }

// CompileBatch compiles and simulates a batch of jobs across a bounded
// worker pool, returning one result per job in job order regardless of
// completion order. Jobs with equal keys compile once; per-job failures
// land in BatchResult.Err without stopping the batch (BatchFirstError
// collects them), and cancelling ctx aborts the run.
func CompileBatch(ctx context.Context, jobs []BatchJob, opts BatchOptions) ([]BatchResult, BatchStats, error) {
	return pipeline.Run(ctx, jobs, opts)
}

// BatchFirstError returns the first per-job failure of a batch in job
// order, or nil.
func BatchFirstError(results []BatchResult) error { return pipeline.FirstError(results) }

// Serving-layer types re-exported from internal/service, the
// compile-as-a-service front end of cmd/powermoved.
type (
	// Server is the compile service: request validation, a shared
	// size-bounded LRU compile cache, singleflight dedup of concurrent
	// identical requests, and bounded compile concurrency over the
	// batch engine. Server.Handler is its HTTP front end.
	Server = service.Server
	// ServerConfig sizes a Server: worker bound, cache capacity, async
	// queue depth and TTL, and the optional disk result store.
	ServerConfig = service.Config
	// ServiceCompileRequest asks the service for one evaluation point
	// (inline QASM or a named workload, plus the shared CompileSpec
	// knobs).
	ServiceCompileRequest = service.CompileRequest
	// ServiceCompileSpec is the compilation knobs (scheme, AOD count,
	// grouping, stable, verify) shared by every compiling request shape.
	ServiceCompileSpec = service.CompileSpec
	// ServiceCompileResponse is one compiled evaluation point.
	ServiceCompileResponse = service.CompileResponse
	// ServiceWorkloadSpec names a generated benchmark instance in a
	// ServiceCompileRequest.
	ServiceWorkloadSpec = service.WorkloadSpec
	// ServiceJobRequest submits async work to POST /v1/jobs: exactly one
	// of its compile/verify/batch/experiment fields.
	ServiceJobRequest = service.JobRequest
	// ResultStore is the disk-backed content-addressed result store a
	// Server can use as its second cache tier; open one with
	// OpenResultStore.
	ResultStore = store.Store
)

// OpenResultStore opens (creating if needed) a disk result store rooted
// at dir, bounded to maxBytes of entries (0 = unbounded); wire it into a
// Server via ServerConfig.Store to make compiled results survive daemon
// restarts.
func OpenResultStore(dir string, maxBytes int64) (*ResultStore, error) {
	return store.Open(dir, maxBytes)
}

// NewServer returns a ready compile service; serve it with
// http.ListenAndServe(addr, s.Handler()) or call its Compile/Batch
// methods directly.
func NewServer(cfg ServerConfig) *Server { return service.New(cfg) }

// CompileJSON executes one service compile request one-shot: req is a
// JSON ServiceCompileRequest, the result is the canonical JSON encoding
// of its ServiceCompileResponse — byte-identical to what a powermoved
// daemon returns for the same request on a cold cache. cmd/powermove
// -json is a thin wrapper; CI's smoke test compares the two.
func CompileJSON(ctx context.Context, req []byte) ([]byte, error) {
	var creq ServiceCompileRequest
	if err := json.Unmarshal(req, &creq); err != nil {
		return nil, fmt.Errorf("compile request: %w", err)
	}
	s := NewServer(ServerConfig{Workers: 1})
	defer s.Close()
	resp, err := s.Compile(ctx, &creq)
	if err != nil {
		return nil, err
	}
	return service.EncodeJSON(resp)
}

// ParseQASM lowers an OpenQASM 2.0 source string (see internal/qasm for
// the supported subset) to a Circuit named name.
func ParseQASM(name, src string) (*Circuit, error) {
	prog, err := qasm.Parse(name, src)
	if err != nil {
		return nil, err
	}
	return prog.Circuit, nil
}

// WriteQASM serializes a circuit back to OpenQASM 2.0.
func WriteQASM(c *Circuit) string { return qasm.Write(c) }

// Benchmark-circuit generators (Sec. 7.1 of the paper).

// QAOARegular returns a depth-1 QAOA MaxCut circuit on a random d-regular
// graph with n vertices.
func QAOARegular(n, d int, seed int64) *Circuit { return workload.QAOARegular(n, d, seed) }

// QAOARandom returns a depth-1 QAOA circuit on a G(n, 0.5) random graph.
func QAOARandom(n int, seed int64) *Circuit { return workload.QAOARandom(n, seed) }

// QFT returns the n-qubit quantum Fourier transform.
func QFT(n int) *Circuit { return workload.QFT(n) }

// BV returns an n-qubit Bernstein-Vazirani circuit with a balanced random
// secret.
func BV(n int, seed int64) *Circuit { return workload.BV(n, seed) }

// VQE returns a hardware-efficient VQE ansatz with linear entanglement.
func VQE(n int) *Circuit { return workload.VQE(n) }

// QSim returns a random quantum-simulation circuit of ten weight-0.3
// Pauli strings.
func QSim(n int, seed int64) *Circuit { return workload.QSim(n, seed) }
