package powermove

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
)

// TestPublicAPIQuickstart is the end-to-end test of the facade: the
// quickstart flow from the package documentation.
func TestPublicAPIQuickstart(t *testing.T) {
	circ := QAOARegular(30, 3, 42)
	hw := DefaultArch(circ.Qubits, 1)
	run, err := CompileAndRun(circ, hw, Options{UseStorage: true})
	if err != nil {
		t.Fatal(err)
	}
	if run.Execution.Fidelity <= 0 || run.Execution.Fidelity > 1 {
		t.Errorf("fidelity = %v", run.Execution.Fidelity)
	}
	if run.Execution.Components.Excitation != 1 {
		t.Errorf("storage pipeline left excitation error: %v", run.Execution.Components.Excitation)
	}
	if run.Compile.Stats.Stages == 0 {
		t.Error("no stages compiled")
	}
}

// TestBaselineComparison: the facade reproduces the paper's qualitative
// result on a mid-size benchmark through public API calls only.
func TestBaselineComparison(t *testing.T) {
	circ := BV(50, 3)
	hw := DefaultArch(circ.Qubits, 1)

	ours, err := CompileAndRun(circ, hw, Options{UseStorage: true})
	if err != nil {
		t.Fatal(err)
	}
	base, err := CompileEnola(circ, hw, EnolaOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	baseExec, err := Execute(base.Program, base.Initial)
	if err != nil {
		t.Fatal(err)
	}
	if ours.Execution.Fidelity <= baseExec.Fidelity {
		t.Errorf("PowerMove fidelity %v not above Enola %v",
			ours.Execution.Fidelity, baseExec.Fidelity)
	}
}

func TestHandBuiltCircuit(t *testing.T) {
	circ := NewCircuit("hand", 4)
	circ.AddBlock(4, NewCZ(0, 1), NewCZ(2, 3))
	circ.AddBlock(0, NewCZ(1, 2))
	run, err := CompileAndRun(circ, DefaultArch(4, 2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if run.Execution.Counts.CZGates != 3 {
		t.Errorf("executed %d CZ gates, want 3", run.Execution.Counts.CZGates)
	}
}

func TestQASMFacade(t *testing.T) {
	src := "OPENQASM 2.0;\nqreg q[3];\nh q[0];\ncx q[0], q[1];\ncx q[1], q[2];\n"
	circ, err := ParseQASM("ghz3", src)
	if err != nil {
		t.Fatal(err)
	}
	if circ.Qubits != 3 || circ.CZCount() != 2 {
		t.Fatalf("parsed %s", circ)
	}
	out := WriteQASM(circ)
	if !strings.Contains(out, "qreg q[3];") {
		t.Errorf("WriteQASM output missing register: %s", out)
	}
	if _, err := ParseQASM("bad", "not qasm"); err == nil {
		t.Error("garbage accepted")
	}
}

// TestCompileJSONFacade checks the one-shot service path: a stable
// request produces a deterministic document that matches a direct
// Server.Compile of the same request — the contract behind the CLI's
// -json mode and CI's daemon-vs-CLI smoke test.
func TestCompileJSONFacade(t *testing.T) {
	req := []byte(`{"workload":{"family":"QFT","qubits":6},"scheme":"with-storage","stable":true}`)
	a, err := CompileJSON(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CompileJSON(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Errorf("stable documents diverged:\n%s\nvs\n%s", a, b)
	}

	var resp ServiceCompileResponse
	if err := json.Unmarshal(a, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Bench != "QFT-6" || resp.Scheme != "with-storage" || resp.Cached {
		t.Errorf("unexpected document %+v", resp)
	}

	srv := NewServer(ServerConfig{Workers: 1})
	defer srv.Close()
	direct, err := srv.Compile(context.Background(), &ServiceCompileRequest{
		Workload:    &ServiceWorkloadSpec{Family: "QFT", Qubits: 6},
		CompileSpec: ServiceCompileSpec{Scheme: "with-storage", Stable: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if direct.Fidelity != resp.Fidelity || direct.TexeUS != resp.TexeUS || direct.Stages != resp.Stages {
		t.Errorf("CompileJSON and Server.Compile diverged: %+v vs %+v", resp, direct)
	}

	if _, err := CompileJSON(context.Background(), []byte(`{"scheme":"turbo"}`)); err == nil {
		t.Error("bad request accepted")
	}
}

func TestGeneratorsExposed(t *testing.T) {
	gens := map[string]*Circuit{
		"QAOARegular": QAOARegular(12, 3, 1),
		"QAOARandom":  QAOARandom(12, 1),
		"QFT":         QFT(8),
		"BV":          BV(10, 1),
		"VQE":         VQE(10),
		"QSim":        QSim(10, 1),
	}
	for name, c := range gens {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
