#!/usr/bin/env bash
# Service smoke test: start powermoved, wait for /healthz, compile one
# circuit over HTTP, and require the response to be byte-identical to
# the powermove CLI's -json output for the same request. Then repeat the
# request and verify via /metrics that it was served from the cache.
#
# Run from the repository root; CI calls it from the smoke job. Scratch
# files go to $RUNNER_TEMP when set (GitHub runners), mktemp otherwise.
set -euo pipefail

TMP="${RUNNER_TEMP:-$(mktemp -d)}"
ADDR=127.0.0.1:8077
ADDR2=127.0.0.1:8078
STORE="$TMP/store"

go build -o "$TMP/powermoved" ./cmd/powermoved
go build -o "$TMP/powermove" ./cmd/powermove
go build -o "$TMP/powermove-router" ./cmd/powermove-router

"$TMP/powermoved" -addr "$ADDR" -store-dir "$STORE" &
DAEMON=$!
DAEMON2=""
ROUTER=""
trap 'kill "$DAEMON" "$DAEMON2" "$ROUTER" 2>/dev/null || true' EXIT

wait_up() {
  local addr=$1
  for _ in $(seq 1 100); do
    if curl -fsS "http://$addr/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.2
  done
  echo "service_smoke: $addr/healthz never came up" >&2
  exit 1
}
wait_up "$ADDR"

REQ='{"workload":{"family":"QFT","qubits":18},"scheme":"with-storage","aods":1,"stable":true}'

curl -fsS -X POST "http://$ADDR/v1/compile" \
  -H 'Content-Type: application/json' -d "$REQ" > "$TMP/svc.json"
"$TMP/powermove" -bench QFT -n 18 -json -stable > "$TMP/cli.json"
cmp "$TMP/svc.json" "$TMP/cli.json"
echo "service_smoke: daemon and CLI documents are byte-identical"

# The compile response must carry the compiler's per-pass breakdown.
grep -q '"passes"' "$TMP/svc.json"
grep -q '"pass": "route"' "$TMP/svc.json"
grep -q '"pass": "emit"' "$TMP/svc.json"
echo "service_smoke: compile response carries the per-pass breakdown"

curl -fsS "http://$ADDR/metrics" > "$TMP/metrics1.json"

curl -fsS -X POST "http://$ADDR/v1/compile" \
  -H 'Content-Type: application/json' -d "$REQ" > "$TMP/svc2.json"
grep -q '"cached": true' "$TMP/svc2.json"

curl -fsS "http://$ADDR/metrics" > "$TMP/metrics.json"
grep -q '"hits": 1' "$TMP/metrics.json"
grep -q '"misses": 1' "$TMP/metrics.json"
grep -q '"compiles": 1' "$TMP/metrics.json"
echo "service_smoke: repeat request was a cache hit (1 hit / 1 miss / 1 compile)"

# A second, fresh evaluation point must advance the /metrics per-pass
# ledger; the cached repeat above must not have moved it. Verify the
# counters are monotone non-decreasing across the scrapes and strictly
# grow over a fresh compile.
REQ2='{"workload":{"family":"QFT","qubits":20},"scheme":"with-storage","aods":1,"stable":true}'
curl -fsS -X POST "http://$ADDR/v1/compile" \
  -H 'Content-Type: application/json' -d "$REQ2" > "$TMP/svc3.json"
grep -q '"cached": false' "$TMP/svc3.json"
curl -fsS "http://$ADDR/metrics" > "$TMP/metrics2.json"

python3 - "$TMP/metrics1.json" "$TMP/metrics.json" "$TMP/metrics2.json" <<'EOF'
import json, sys

scrapes = [json.load(open(p))["passes"] for p in sys.argv[1:]]
first, cached, grown = scrapes
if not first:
    sys.exit("per-pass ledger empty after the first compile")
for name, before in first.items():
    if cached[name] != before:
        sys.exit(f"cache hit moved the pass ledger for {name}: {before} -> {cached[name]}")
    now = grown[name]
    if now["calls"] <= before["calls"] or now["total_ms"] < before["total_ms"]:
        sys.exit(f"pass {name} did not advance over a fresh compile: {before} -> {now}")
    for k, v in before.get("counters", {}).items():
        if now["counters"][k] < v:
            sys.exit(f"pass {name} counter {k} regressed: {v} -> {now['counters'][k]}")
print("service_smoke: /metrics per-pass counters are monotone across requests")
EOF

# Differential verification end to end: ?verify=1 must return a clean
# verify block, the /metrics verify ledger must record the check, and
# the whole-suite verification sweep must pass.
curl -fsS -X POST "http://$ADDR/v1/compile?verify=1" \
  -H 'Content-Type: application/json' -d "$REQ" > "$TMP/svc-verify.json"
grep -q '"verify"' "$TMP/svc-verify.json"
grep -q '"violations": 0' "$TMP/svc-verify.json"
grep -q '"equivalence_mode": "statevec"' "$TMP/svc-verify.json"
"$TMP/powermove" -bench QFT -n 18 -json -stable -verify > "$TMP/cli-verify.json"
cmp "$TMP/svc-verify.json" "$TMP/cli-verify.json"
curl -fsS "http://$ADDR/metrics" > "$TMP/metrics3.json"
python3 - "$TMP/metrics3.json" <<'PYEOF'
import json, sys
v = json.load(open(sys.argv[1]))["verify"]
if v["checks"] < 1 or v["clean"] != v["checks"] or v["violations"] != 0:
    sys.exit(f"verify ledger wrong: {v}")
print("service_smoke: /metrics verify ledger records a clean check")
PYEOF
echo "service_smoke: daemon verify mode is clean and byte-identical to the CLI"

if ! go run ./cmd/experiments -verify -progress=false > "$TMP/verify-sweep.txt"; then
  echo "service_smoke: verification sweep reported failures" >&2
  cat "$TMP/verify-sweep.txt" >&2
  exit 1
fi
echo "service_smoke: verification sweep passed (all families x all pipelines)"

# --- Async /v1/jobs round trip -------------------------------------
# Submit the warmed request as a job, poll to done, and require the
# result document byte-identical to the sync endpoint's warm response
# (warm vs warm: both are cache hits, both say "cached": true).
job_field() { python3 -c 'import json,sys; print(json.load(sys.stdin)[sys.argv[1]])' "$1"; }

JID=$(curl -fsS -X POST "http://$ADDR/v1/jobs" \
  -H 'Content-Type: application/json' -d "{\"compile\":$REQ}" | job_field id)
STATE=queued
for _ in $(seq 1 100); do
  STATE=$(curl -fsS "http://$ADDR/v1/jobs/$JID" | job_field state)
  case "$STATE" in
    done) break ;;
    failed|canceled) echo "service_smoke: job $JID ended $STATE" >&2; exit 1 ;;
  esac
  sleep 0.1
done
if [ "$STATE" != done ]; then
  echo "service_smoke: job $JID never finished (state $STATE)" >&2
  exit 1
fi
curl -fsS "http://$ADDR/v1/jobs/$JID/result" > "$TMP/async.json"
cmp "$TMP/async.json" "$TMP/svc2.json"
echo "service_smoke: async job result is byte-identical to the sync document"

# --- Queue backpressure --------------------------------------------
# A dedicated daemon with one worker and a one-slot queue: a slow batch
# job (16 distinct verified 22-qubit compiles, several seconds on one
# worker) occupies the worker, a second job fills the queue, and the
# third submission must be shed with 429 + Retry-After + the stable
# queue_full error code.
"$TMP/powermoved" -addr "$ADDR2" -workers 1 -queue-depth 1 &
DAEMON2=$!
wait_up "$ADDR2"

SLOW=$(python3 -c '
import json
reqs = [{"workload": {"family": "QSIM-rand", "qubits": 22, "seed": s},
         "stable": True, "verify": True} for s in range(1, 17)]
print(json.dumps({"batch": {"requests": reqs}}))')
RID=$(curl -fsS -X POST "http://$ADDR2/v1/jobs" \
  -H 'Content-Type: application/json' -d "$SLOW" | job_field id)
for _ in $(seq 1 100); do
  [ "$(curl -fsS "http://$ADDR2/v1/jobs/$RID" | job_field state)" = running ] && break
  sleep 0.1
done
curl -fsS -X POST "http://$ADDR2/v1/jobs" \
  -H 'Content-Type: application/json' \
  -d '{"compile":{"workload":{"family":"QFT","qubits":20},"stable":true}}' >/dev/null
CODE=$(curl -s -o "$TMP/shed.json" -D "$TMP/shed-headers.txt" -w '%{http_code}' \
  -X POST "http://$ADDR2/v1/jobs" -H 'Content-Type: application/json' \
  -d '{"compile":{"workload":{"family":"QFT","qubits":22},"stable":true}}')
if [ "$CODE" != 429 ]; then
  echo "service_smoke: submit beyond queue depth answered $CODE, want 429" >&2
  cat "$TMP/shed.json" >&2
  exit 1
fi
grep -qi '^retry-after:' "$TMP/shed-headers.txt"
grep -q '"queue_full"' "$TMP/shed.json"
curl -fsS "http://$ADDR2/metrics" > "$TMP/metrics-shed.json"
python3 - "$TMP/metrics-shed.json" <<'PYEOF'
import json, sys
j = json.load(open(sys.argv[1]))["jobs"]
if j["shed"] != 1 or j["depth"] != j["capacity"]:
    sys.exit(f"queue ledger wrong: {j}")
print("service_smoke: queue sheds at depth with 429 + Retry-After + queue_full")
PYEOF
kill "$DAEMON2" 2>/dev/null || true
DAEMON2=""

# --- Restart durability --------------------------------------------
# Restart the main daemon over the same -store-dir: the warmed request
# must come back as a cache hit served from disk — zero compiles, a
# store hit on /metrics, and the same bytes as before the restart.
kill "$DAEMON" 2>/dev/null || true
wait "$DAEMON" 2>/dev/null || true
"$TMP/powermoved" -addr "$ADDR" -store-dir "$STORE" &
DAEMON=$!
wait_up "$ADDR"

curl -fsS -X POST "http://$ADDR/v1/compile" \
  -H 'Content-Type: application/json' -d "$REQ" > "$TMP/svc-restart.json"
grep -q '"cached": true' "$TMP/svc-restart.json"
cmp "$TMP/svc-restart.json" "$TMP/svc2.json"
curl -fsS "http://$ADDR/metrics" > "$TMP/metrics-restart.json"
python3 - "$TMP/metrics-restart.json" <<'PYEOF'
import json, sys
m = json.load(open(sys.argv[1]))
if m["compiles"] != 0:
    sys.exit(f"restarted daemon compiled {m['compiles']} times, want 0")
if (m.get("store") or {}).get("hits", 0) < 1:
    sys.exit(f"restart served no store hit: {m.get('store')}")
print("service_smoke: restart over the same -store-dir serves the prior result from disk")
PYEOF

# --- Incremental compilation ---------------------------------------
# Two inline QASM programs sharing an 11-block prefix (only the last
# cz layer differs): the tail-edited resubmission must resume from the
# first compile's per-pass snapshots (incremental_prefix_hits rises,
# the saved-time ledger grows) while the response stays byte-identical
# to a cold CLI compile of the same mutated program.
python3 - "$TMP" <<'PYEOF'
import json, sys
tmp = sys.argv[1]
def layered(n, layers, shift):
    lines = ['OPENQASM 2.0;', 'include "qelib1.inc";', f'qreg q[{n}];']
    for l in range(layers):
        lines += [f'h q[{q}];' for q in range(n)]
        off = l % 2
        if shift and l == layers - 1:
            off = 1 - off
        lines += [f'cz q[{a}], q[{a+1}];' for a in range(off, n - 1, 2)]
    return '\n'.join(lines) + '\n'
for name, shift in (('incr-base', False), ('incr-mut', True)):
    src = layered(10, 12, shift)
    open(f'{tmp}/{name}.qasm', 'w').write(src)
    req = {"qasm": src, "scheme": "with-storage", "aods": 1, "stable": True}
    open(f'{tmp}/{name}-req.json', 'w').write(json.dumps(req))
PYEOF
curl -fsS -X POST "http://$ADDR/v1/compile" \
  -H 'Content-Type: application/json' -d @"$TMP/incr-base-req.json" > "$TMP/incr-base.json"
grep -q '"cached": false' "$TMP/incr-base.json"
curl -fsS "http://$ADDR/metrics" > "$TMP/metrics-incr-before.json"
curl -fsS -X POST "http://$ADDR/v1/compile" \
  -H 'Content-Type: application/json' -d @"$TMP/incr-mut-req.json" > "$TMP/incr-mut.json"
grep -q '"cached": false' "$TMP/incr-mut.json"
curl -fsS "http://$ADDR/metrics" > "$TMP/metrics-incr-after.json"
python3 - "$TMP/metrics-incr-before.json" "$TMP/metrics-incr-after.json" <<'PYEOF'
import json, sys
before, after = [json.load(open(p))["incremental"] for p in sys.argv[1:]]
if not after["enabled"]:
    sys.exit(f"incremental subsystem disabled on the default daemon: {after}")
if after["incremental_prefix_hits"] <= before["incremental_prefix_hits"]:
    sys.exit(f"tail edit produced no prefix hit: {before} -> {after}")
if after["saved_ms"] <= before["saved_ms"]:
    sys.exit(f"prefix hit did not grow the saved-time ledger: {before} -> {after}")
print("service_smoke: tail-edited resubmission resumed from the snapshot prefix")
PYEOF
"$TMP/powermove" -qasm "$TMP/incr-mut.qasm" -json -stable > "$TMP/incr-cold.json"
cmp "$TMP/incr-mut.json" "$TMP/incr-cold.json"
echo "service_smoke: incremental recompile is byte-identical to a cold CLI compile"

# --- Speculative precompilation ------------------------------------
# A -speculate daemon nominates the grouping/scheme variants of a
# fresh compile and precompiles them on idle workers; the later real
# request for a variant is a cache hit credited to speculative_hits.
"$TMP/powermoved" -addr "$ADDR2" -speculate &
DAEMON2=$!
wait_up "$ADDR2"
curl -fsS -X POST "http://$ADDR2/v1/compile" \
  -H 'Content-Type: application/json' -d "$REQ" > /dev/null
SPEC_READY=""
for _ in $(seq 1 150); do
  curl -fsS "http://$ADDR2/metrics" > "$TMP/metrics-spec.json"
  if python3 -c 'import json, sys
s = json.load(open(sys.argv[1]))["speculation"]
sys.exit(0 if s["queued"] == 0 and s["speculative_compiles"] >= 3 else 1)' "$TMP/metrics-spec.json"; then
    SPEC_READY=1
    break
  fi
  sleep 0.2
done
if [ -z "$SPEC_READY" ]; then
  echo "service_smoke: speculation never drained its variant queue" >&2
  cat "$TMP/metrics-spec.json" >&2
  exit 1
fi
VARREQ='{"workload":{"family":"QFT","qubits":18},"scheme":"with-storage","aods":1,"grouping":"distance","stable":true}'
curl -fsS -X POST "http://$ADDR2/v1/compile" \
  -H 'Content-Type: application/json' -d "$VARREQ" > "$TMP/spec-hit.json"
grep -q '"cached": true' "$TMP/spec-hit.json"
curl -fsS "http://$ADDR2/metrics" > "$TMP/metrics-spec2.json"
python3 - "$TMP/metrics-spec2.json" <<'PYEOF'
import json, sys
s = json.load(open(sys.argv[1]))["speculation"]
if s["speculative_hits"] != 1:
    sys.exit(f"speculative_hits = {s['speculative_hits']}, want 1: {s}")
if s["saved_ms"] <= 0:
    sys.exit(f"speculative hit did not grow the saved-time ledger: {s}")
print("service_smoke: speculated variant served from cache with the hit credited")
PYEOF
kill "$DAEMON2" 2>/dev/null || true
DAEMON2=""

# --- Fleet: consistent-hash routing + shared-store failover --------
# Two daemons with fleet identities share one -store-dir behind the
# router. A repeated compile must route to the same backend every time
# (cache hits rising on exactly one daemon); killing that backend must
# lose zero requests — the retry fails over to the replica, which
# serves the result from the shared disk store without recompiling.
kill "$DAEMON" 2>/dev/null || true
wait "$DAEMON" 2>/dev/null || true
RADDR=127.0.0.1:8079
"$TMP/powermoved" -addr "$ADDR" -backend-id b1 -store-dir "$STORE" &
DAEMON=$!
"$TMP/powermoved" -addr "$ADDR2" -backend-id b2 -store-dir "$STORE" &
DAEMON2=$!
wait_up "$ADDR"
wait_up "$ADDR2"
"$TMP/powermove-router" -addr "$RADDR" -health-interval 300ms \
  -backend "b1=http://$ADDR" -backend "b2=http://$ADDR2" &
ROUTER=$!
wait_up "$RADDR"

FREQ='{"workload":{"family":"QFT","qubits":19},"scheme":"with-storage","aods":1,"stable":true}'
OWNER=""
for i in $(seq 1 5); do
  curl -fsS -D "$TMP/fleet-headers.txt" -X POST "http://$RADDR/v1/compile" \
    -H 'Content-Type: application/json' -d "$FREQ" > "$TMP/fleet-$i.json"
  GOT=$(tr -d '\r' < "$TMP/fleet-headers.txt" | awk 'tolower($1)=="x-powermove-backend:"{print $2}')
  if [ -z "$OWNER" ]; then OWNER=$GOT; fi
  if [ "$GOT" != "$OWNER" ]; then
    echo "service_smoke: request $i routed to $GOT, earlier ones to $OWNER" >&2
    exit 1
  fi
done
grep -q '"cached": true' "$TMP/fleet-5.json"
curl -fsS "http://$RADDR/metrics" > "$TMP/fleet-metrics.json"
python3 - "$TMP/fleet-metrics.json" "$OWNER" <<'PYEOF'
import json, sys
m = json.load(open(sys.argv[1]))
owner = sys.argv[2]
pb = m["per_backend"]
blk = pb[owner]["backend"]
if blk is None or blk["cache_hits"] < 4:
    sys.exit(f"owner {owner} shows {blk and blk['cache_hits']} cache hits, want >= 4")
for name, row in pb.items():
    if name != owner and (row["backend"] or {}).get("compiles", 1) != 0:
        sys.exit(f"non-owner {name} compiled: {row['backend']}")
if m["keyed"] < 5 or m["failed"] != 0:
    sys.exit(f"router ledger wrong: keyed={m['keyed']} failed={m['failed']}")
print(f"service_smoke: 5/5 requests routed to {owner}; its cache alone served the repeats")
PYEOF

if [ "$OWNER" = b1 ]; then
  kill "$DAEMON" 2>/dev/null || true; wait "$DAEMON" 2>/dev/null || true; DAEMON=""
else
  kill "$DAEMON2" 2>/dev/null || true; wait "$DAEMON2" 2>/dev/null || true; DAEMON2=""
fi
curl -fsS -D "$TMP/fleet-failover-headers.txt" -X POST "http://$RADDR/v1/compile" \
  -H 'Content-Type: application/json' -d "$FREQ" > "$TMP/fleet-failover.json"
SURVIVOR=$(tr -d '\r' < "$TMP/fleet-failover-headers.txt" | awk 'tolower($1)=="x-powermove-backend:"{print $2}')
if [ "$SURVIVOR" = "$OWNER" ] || [ -z "$SURVIVOR" ]; then
  echo "service_smoke: failover request answered by $SURVIVOR, want the replica of $OWNER" >&2
  exit 1
fi
grep -q '"cached": true' "$TMP/fleet-failover.json"
curl -fsS "http://$RADDR/metrics" > "$TMP/fleet-metrics2.json"
python3 - "$TMP/fleet-metrics2.json" "$OWNER" <<'PYEOF'
import json, sys
m = json.load(open(sys.argv[1]))
owner = sys.argv[2]
if m["failed"] != 0:
    sys.exit(f"router lost requests: failed={m['failed']}")
# The dead primary surfaces either as a request-time failover or as an
# active-probe mark-down, whichever fired first.
if m["failovers"] < 1 and m["per_backend"][owner]["healthy"]:
    sys.exit(f"dead backend {owner} neither failed over nor marked down: {m}")
print("service_smoke: killed backend lost zero requests; replica served from the shared store")
PYEOF
kill "$ROUTER" 2>/dev/null || true
ROUTER=""

echo "service_smoke: PASS"
