#!/usr/bin/env bash
# Service smoke test: start powermoved, wait for /healthz, compile one
# circuit over HTTP, and require the response to be byte-identical to
# the powermove CLI's -json output for the same request. Then repeat the
# request and verify via /metrics that it was served from the cache.
#
# Run from the repository root; CI calls it from the smoke job. Scratch
# files go to $RUNNER_TEMP when set (GitHub runners), mktemp otherwise.
set -euo pipefail

TMP="${RUNNER_TEMP:-$(mktemp -d)}"
ADDR=127.0.0.1:8077

go build -o "$TMP/powermoved" ./cmd/powermoved
go build -o "$TMP/powermove" ./cmd/powermove

"$TMP/powermoved" -addr "$ADDR" &
DAEMON=$!
trap 'kill "$DAEMON" 2>/dev/null || true' EXIT

up=0
for _ in $(seq 1 100); do
  if curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then up=1; break; fi
  sleep 0.2
done
if [ "$up" != 1 ]; then
  echo "service_smoke: /healthz never came up" >&2
  exit 1
fi

REQ='{"workload":{"family":"QFT","qubits":18},"scheme":"with-storage","aods":1,"stable":true}'

curl -fsS -X POST "http://$ADDR/v1/compile" \
  -H 'Content-Type: application/json' -d "$REQ" > "$TMP/svc.json"
"$TMP/powermove" -bench QFT -n 18 -json -stable > "$TMP/cli.json"
cmp "$TMP/svc.json" "$TMP/cli.json"
echo "service_smoke: daemon and CLI documents are byte-identical"

curl -fsS -X POST "http://$ADDR/v1/compile" \
  -H 'Content-Type: application/json' -d "$REQ" > "$TMP/svc2.json"
grep -q '"cached": true' "$TMP/svc2.json"

curl -fsS "http://$ADDR/metrics" > "$TMP/metrics.json"
grep -q '"hits": 1' "$TMP/metrics.json"
grep -q '"misses": 1' "$TMP/metrics.json"
grep -q '"compiles": 1' "$TMP/metrics.json"
echo "service_smoke: repeat request was a cache hit (1 hit / 1 miss / 1 compile)"

echo "service_smoke: PASS"
