#!/usr/bin/env bash
# Service smoke test: start powermoved, wait for /healthz, compile one
# circuit over HTTP, and require the response to be byte-identical to
# the powermove CLI's -json output for the same request. Then repeat the
# request and verify via /metrics that it was served from the cache.
#
# Run from the repository root; CI calls it from the smoke job. Scratch
# files go to $RUNNER_TEMP when set (GitHub runners), mktemp otherwise.
set -euo pipefail

TMP="${RUNNER_TEMP:-$(mktemp -d)}"
ADDR=127.0.0.1:8077

go build -o "$TMP/powermoved" ./cmd/powermoved
go build -o "$TMP/powermove" ./cmd/powermove

"$TMP/powermoved" -addr "$ADDR" &
DAEMON=$!
trap 'kill "$DAEMON" 2>/dev/null || true' EXIT

up=0
for _ in $(seq 1 100); do
  if curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then up=1; break; fi
  sleep 0.2
done
if [ "$up" != 1 ]; then
  echo "service_smoke: /healthz never came up" >&2
  exit 1
fi

REQ='{"workload":{"family":"QFT","qubits":18},"scheme":"with-storage","aods":1,"stable":true}'

curl -fsS -X POST "http://$ADDR/v1/compile" \
  -H 'Content-Type: application/json' -d "$REQ" > "$TMP/svc.json"
"$TMP/powermove" -bench QFT -n 18 -json -stable > "$TMP/cli.json"
cmp "$TMP/svc.json" "$TMP/cli.json"
echo "service_smoke: daemon and CLI documents are byte-identical"

# The compile response must carry the compiler's per-pass breakdown.
grep -q '"passes"' "$TMP/svc.json"
grep -q '"pass": "route"' "$TMP/svc.json"
grep -q '"pass": "emit"' "$TMP/svc.json"
echo "service_smoke: compile response carries the per-pass breakdown"

curl -fsS "http://$ADDR/metrics" > "$TMP/metrics1.json"

curl -fsS -X POST "http://$ADDR/v1/compile" \
  -H 'Content-Type: application/json' -d "$REQ" > "$TMP/svc2.json"
grep -q '"cached": true' "$TMP/svc2.json"

curl -fsS "http://$ADDR/metrics" > "$TMP/metrics.json"
grep -q '"hits": 1' "$TMP/metrics.json"
grep -q '"misses": 1' "$TMP/metrics.json"
grep -q '"compiles": 1' "$TMP/metrics.json"
echo "service_smoke: repeat request was a cache hit (1 hit / 1 miss / 1 compile)"

# A second, fresh evaluation point must advance the /metrics per-pass
# ledger; the cached repeat above must not have moved it. Verify the
# counters are monotone non-decreasing across the scrapes and strictly
# grow over a fresh compile.
REQ2='{"workload":{"family":"QFT","qubits":20},"scheme":"with-storage","aods":1,"stable":true}'
curl -fsS -X POST "http://$ADDR/v1/compile" \
  -H 'Content-Type: application/json' -d "$REQ2" > "$TMP/svc3.json"
grep -q '"cached": false' "$TMP/svc3.json"
curl -fsS "http://$ADDR/metrics" > "$TMP/metrics2.json"

python3 - "$TMP/metrics1.json" "$TMP/metrics.json" "$TMP/metrics2.json" <<'EOF'
import json, sys

scrapes = [json.load(open(p))["passes"] for p in sys.argv[1:]]
first, cached, grown = scrapes
if not first:
    sys.exit("per-pass ledger empty after the first compile")
for name, before in first.items():
    if cached[name] != before:
        sys.exit(f"cache hit moved the pass ledger for {name}: {before} -> {cached[name]}")
    now = grown[name]
    if now["calls"] <= before["calls"] or now["total_ms"] < before["total_ms"]:
        sys.exit(f"pass {name} did not advance over a fresh compile: {before} -> {now}")
    for k, v in before.get("counters", {}).items():
        if now["counters"][k] < v:
            sys.exit(f"pass {name} counter {k} regressed: {v} -> {now['counters'][k]}")
print("service_smoke: /metrics per-pass counters are monotone across requests")
EOF

# Differential verification end to end: ?verify=1 must return a clean
# verify block, the /metrics verify ledger must record the check, and
# the whole-suite verification sweep must pass.
curl -fsS -X POST "http://$ADDR/v1/compile?verify=1" \
  -H 'Content-Type: application/json' -d "$REQ" > "$TMP/svc-verify.json"
grep -q '"verify"' "$TMP/svc-verify.json"
grep -q '"violations": 0' "$TMP/svc-verify.json"
grep -q '"equivalence_mode": "statevec"' "$TMP/svc-verify.json"
"$TMP/powermove" -bench QFT -n 18 -json -stable -verify > "$TMP/cli-verify.json"
cmp "$TMP/svc-verify.json" "$TMP/cli-verify.json"
curl -fsS "http://$ADDR/metrics" > "$TMP/metrics3.json"
python3 - "$TMP/metrics3.json" <<'PYEOF'
import json, sys
v = json.load(open(sys.argv[1]))["verify"]
if v["checks"] < 1 or v["clean"] != v["checks"] or v["violations"] != 0:
    sys.exit(f"verify ledger wrong: {v}")
print("service_smoke: /metrics verify ledger records a clean check")
PYEOF
echo "service_smoke: daemon verify mode is clean and byte-identical to the CLI"

if ! go run ./cmd/experiments -verify -progress=false > "$TMP/verify-sweep.txt"; then
  echo "service_smoke: verification sweep reported failures" >&2
  cat "$TMP/verify-sweep.txt" >&2
  exit 1
fi
echo "service_smoke: verification sweep passed (all families x all pipelines)"

echo "service_smoke: PASS"
